//! # corrfuse-eval
//!
//! Evaluation infrastructure for the corrfuse reproduction:
//!
//! * [`metrics`] — precision/recall/F1 confusion accounting;
//! * [`curves`] — tie-aware PR and ROC curves with AUC-PR / AUC-ROC;
//! * [`calibration`] — Brier score and reliability diagrams (quantifies
//!   the paper's "probabilities fall in extreme ranges" observation);
//! * [`report`] — fixed-width text tables shared by all binaries;
//! * [`harness`] — the method registry ([`harness::MethodSpec`]) that runs
//!   any fusion method or baseline on any dataset with timing;
//! * [`experiments`] — one runner per paper figure/table (see DESIGN.md).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calibration;
pub mod curves;
pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod report;

pub use harness::{evaluate_all, evaluate_method, run_method, MethodReport, MethodSpec};
pub use metrics::{Confusion, Prf};
