//! Probability calibration diagnostics.
//!
//! The paper argues PR/ROC curves show whether "the correctness
//! probabilities we compute are consistent with the reality", and observes
//! that LTM's "probabilities ... typically fall in extreme ranges". This
//! module quantifies that directly: the Brier score (mean squared error of
//! the probabilities) and a reliability table (predicted vs. empirical
//! truth rate per probability bin), with the expected calibration error.

use corrfuse_core::dataset::GoldLabels;

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityBin {
    /// Inclusive lower edge of the bin.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub hi: f64,
    /// Number of labelled triples whose score fell in the bin.
    pub count: usize,
    /// Mean predicted probability in the bin.
    pub mean_predicted: f64,
    /// Empirical fraction of true triples in the bin.
    pub empirical_truth_rate: f64,
}

/// Calibration summary of one method's scores.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Mean squared error of the probabilities (lower is better;
    /// 0.25 is the score of always predicting 0.5 on balanced data).
    pub brier: f64,
    /// Expected calibration error: count-weighted mean |predicted −
    /// empirical| over bins.
    pub ece: f64,
    /// Fraction of scores in the extreme bins (< 0.05 or > 0.95) — the
    /// paper's "extreme ranges" diagnostic.
    pub extreme_fraction: f64,
    /// The reliability bins.
    pub bins: Vec<ReliabilityBin>,
}

/// Compute calibration over labelled triples with `n_bins` equal-width
/// probability bins (scores are clamped into `[0, 1]`).
pub fn calibration(gold: &GoldLabels, scores: &[f64], n_bins: usize) -> Calibration {
    let n_bins = n_bins.max(1);
    let mut count = vec![0usize; n_bins];
    let mut sum_p = vec![0.0f64; n_bins];
    let mut sum_true = vec![0.0f64; n_bins];
    let mut brier_acc = 0.0f64;
    let mut total = 0usize;
    let mut extreme = 0usize;

    for (t, truth) in gold.iter_labelled() {
        let p = scores
            .get(t.index())
            .copied()
            .unwrap_or(0.0)
            .clamp(0.0, 1.0);
        let y = truth as usize as f64;
        brier_acc += (p - y) * (p - y);
        total += 1;
        if !(0.05..=0.95).contains(&p) {
            extreme += 1;
        }
        let bin = ((p * n_bins as f64) as usize).min(n_bins - 1);
        count[bin] += 1;
        sum_p[bin] += p;
        sum_true[bin] += y;
    }

    let mut bins = Vec::with_capacity(n_bins);
    let mut ece = 0.0f64;
    for b in 0..n_bins {
        let lo = b as f64 / n_bins as f64;
        let hi = (b + 1) as f64 / n_bins as f64;
        let (mean_predicted, empirical) = if count[b] > 0 {
            (sum_p[b] / count[b] as f64, sum_true[b] / count[b] as f64)
        } else {
            ((lo + hi) / 2.0, f64::NAN)
        };
        if count[b] > 0 && total > 0 {
            ece += (count[b] as f64 / total as f64) * (mean_predicted - empirical).abs();
        }
        bins.push(ReliabilityBin {
            lo,
            hi,
            count: count[b],
            mean_predicted,
            empirical_truth_rate: empirical,
        });
    }

    Calibration {
        brier: if total > 0 {
            brier_acc / total as f64
        } else {
            f64::NAN
        },
        ece,
        extreme_fraction: if total > 0 {
            extreme as f64 / total as f64
        } else {
            f64::NAN
        },
        bins,
    }
}

impl Calibration {
    /// Render the reliability table.
    pub fn render(&self) -> String {
        let mut t = crate::report::Table::new(["bin", "count", "mean pred", "empirical"]);
        for b in &self.bins {
            t.row([
                format!("[{:.2},{:.2})", b.lo, b.hi),
                b.count.to_string(),
                crate::report::f3(b.mean_predicted),
                crate::report::f3(b.empirical_truth_rate),
            ]);
        }
        format!(
            "brier {:.4}  ece {:.4}  extreme-fraction {:.2}\n{t}",
            self.brier, self.ece, self.extreme_fraction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_core::dataset::{Dataset, DatasetBuilder};

    fn ds(truths: &[bool]) -> Dataset {
        let mut b = DatasetBuilder::new();
        let s = b.source("A");
        for (i, &truth) in truths.iter().enumerate() {
            let t = b.triple(format!("e{i}"), "p", "v");
            b.observe(s, t);
            b.label(t, truth);
        }
        b.build().unwrap()
    }

    #[test]
    fn perfect_predictions_have_zero_brier() {
        let ds = ds(&[true, false, true, false]);
        let scores = [1.0, 0.0, 1.0, 0.0];
        let c = calibration(ds.gold().unwrap(), &scores, 10);
        assert_eq!(c.brier, 0.0);
        assert!(c.ece < 1e-12);
        assert_eq!(c.extreme_fraction, 1.0);
    }

    #[test]
    fn constant_half_has_quarter_brier_on_balanced_data() {
        let ds = ds(&[true, false, true, false]);
        let scores = [0.5; 4];
        let c = calibration(ds.gold().unwrap(), &scores, 10);
        assert!((c.brier - 0.25).abs() < 1e-12);
        // Predicting 0.5 on 50%-true data is perfectly calibrated.
        assert!(c.ece < 1e-12);
        assert_eq!(c.extreme_fraction, 0.0);
    }

    #[test]
    fn overconfident_wrong_predictions_have_high_ece() {
        // Everything predicted ~1 but only half true.
        let ds = ds(&[true, false, true, false]);
        let scores = [0.99; 4];
        let c = calibration(ds.gold().unwrap(), &scores, 10);
        assert!(c.ece > 0.45, "ece {}", c.ece);
        assert_eq!(c.extreme_fraction, 1.0);
        assert!((c.brier - (2.0 * 0.99f64.powi(2) + 2.0 * 0.01f64.powi(2)) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn bins_partition_scores() {
        let ds = ds(&[true, true, false, false, true]);
        let scores = [0.1, 0.35, 0.55, 0.75, 0.95];
        let c = calibration(ds.gold().unwrap(), &scores, 5);
        let total: usize = c.bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 5);
        assert_eq!(c.bins.len(), 5);
        for b in &c.bins {
            assert_eq!(b.count, 1, "{b:?}");
        }
    }

    #[test]
    fn empty_bins_report_nan_empirical() {
        let ds = ds(&[true]);
        let scores = [0.99];
        let c = calibration(ds.gold().unwrap(), &scores, 4);
        assert!(c.bins[0].empirical_truth_rate.is_nan());
        assert_eq!(c.bins[3].count, 1);
        let rendered = c.render();
        assert!(rendered.contains("brier"));
        assert!(rendered.contains("n/a"));
    }

    #[test]
    fn scores_out_of_range_are_clamped() {
        let ds = ds(&[true, false]);
        let scores = [1.7, -0.3];
        let c = calibration(ds.gold().unwrap(), &scores, 10);
        assert_eq!(c.brier, 0.0);
    }
}
