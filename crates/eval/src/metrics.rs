//! Binary classification metrics over gold-labelled triples.

use corrfuse_core::dataset::GoldLabels;

/// Confusion-matrix counts restricted to labelled triples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// Accepted and true.
    pub tp: usize,
    /// Accepted but false.
    pub fp: usize,
    /// Rejected and false.
    pub tn: usize,
    /// Rejected but true.
    pub fn_: usize,
}

impl Confusion {
    /// Tally decisions against gold labels; unlabelled triples are skipped.
    pub fn from_decisions(gold: &GoldLabels, decisions: &[bool]) -> Self {
        let mut c = Confusion::default();
        for (t, truth) in gold.iter_labelled() {
            let accepted = decisions.get(t.index()).copied().unwrap_or(false);
            match (accepted, truth) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// `tp / (tp + fp)`; 0 when nothing was accepted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// `tp / (tp + fn)`; 0 when nothing is true.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        corrfuse_core::prob::f1_score(self.precision(), self.recall())
    }

    /// Fraction of labelled triples classified correctly.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// True-positive rate (= recall), for ROC axes.
    pub fn tpr(&self) -> f64 {
        self.recall()
    }

    /// False-positive rate `fp / (fp + tn)`.
    pub fn fpr(&self) -> f64 {
        if self.fp + self.tn == 0 {
            0.0
        } else {
            self.fp as f64 / (self.fp + self.tn) as f64
        }
    }
}

/// Precision/recall/F1 triple for compact reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prf {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1.
    pub f1: f64,
}

impl From<Confusion> for Prf {
    fn from(c: Confusion) -> Self {
        Prf {
            precision: c.precision(),
            recall: c.recall(),
            f1: c.f1(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_core::dataset::{Dataset, DatasetBuilder};

    fn ds() -> Dataset {
        let mut b = DatasetBuilder::new();
        let s = b.source("A");
        for i in 0..6 {
            let t = b.triple(format!("e{i}"), "p", "v");
            b.observe(s, t);
            b.label(t, i < 3); // 3 true, 3 false
        }
        b.build().unwrap()
    }

    #[test]
    fn confusion_counts() {
        let ds = ds();
        // Accept triples 0, 1, 3: tp=2 fp=1 fn=1 tn=2.
        let decisions = [true, true, false, true, false, false];
        let c = Confusion::from_decisions(ds.gold().unwrap(), &decisions);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                tn: 2,
                fn_: 1
            }
        );
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((c.fpr() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics_are_zero() {
        let c = Confusion::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.fpr(), 0.0);
    }

    #[test]
    fn missing_decisions_count_as_reject() {
        let ds = ds();
        let decisions = [true]; // too short
        let c = Confusion::from_decisions(ds.gold().unwrap(), &decisions);
        assert_eq!(c.tp, 1);
        assert_eq!(c.fn_, 2);
    }

    #[test]
    fn prf_conversion() {
        let c = Confusion {
            tp: 3,
            fp: 1,
            tn: 1,
            fn_: 0,
        };
        let prf: Prf = c.into();
        assert!((prf.precision - 0.75).abs() < 1e-12);
        assert!((prf.recall - 1.0).abs() < 1e-12);
    }
}
