//! Fixed-width ASCII tables for experiment output.
//!
//! All bench binaries print through this module so the regenerated
//! tables/figures have one consistent look.

use std::fmt;

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[c])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a float with 3 decimals (the paper's convention for metrics).
pub fn f3(v: f64) -> String {
    if v.is_nan() {
        "n/a".to_string()
    } else {
        format!("{v:.3}")
    }
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    if v.is_nan() {
        "n/a".to_string()
    } else {
        format!("{v:.2}")
    }
}

/// Format a duration in seconds with adaptive precision.
pub fn secs(v: f64) -> String {
    if v < 0.001 {
        format!("{:.1}ms", v * 1000.0)
    } else if v < 1.0 {
        format!("{:.0}ms", v * 1000.0)
    } else {
        format!("{v:.2}s")
    }
}

/// Render a sparkline-style series `x=y` list for curve output.
pub fn series(points: &[(f64, f64)]) -> String {
    points
        .iter()
        .map(|(x, y)| format!("({x:.2},{y:.2})"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(["method", "precision", "f1"]);
        t.row(["Union-25", "0.556", "0.667"]);
        t.row(["PrecRecCorr", "1.000", "0.909"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("Union-25"));
        // All data lines have the same formatted width for column 0.
        let col0 = lines[2].find("0.556").unwrap();
        let col0b = lines[3].find("1.000").unwrap();
        assert_eq!(col0, col0b);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f2(0.999), "1.00");
        assert_eq!(f3(f64::NAN), "n/a");
        assert_eq!(secs(0.0005), "0.5ms");
        assert_eq!(secs(0.25), "250ms");
        assert_eq!(secs(12.5), "12.50s");
        assert_eq!(
            series(&[(0.0, 1.0), (0.5, 0.25)]),
            "(0.00,1.00) (0.50,0.25)"
        );
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.to_string().contains('x'));
    }
}
