//! Ranking curves: precision–recall and ROC, with their areas.
//!
//! The paper ranks triples by decreasing truthfulness score, walks down the
//! ranking, and plots precision vs. recall (PR-curve) and true-positive vs.
//! false-positive rate (ROC-curve), reporting AUC-PR and AUC-ROC. Tied
//! scores are processed as a block (important for UNION-K, whose scores
//! take only `n_sources + 1` distinct values).

use corrfuse_core::dataset::GoldLabels;

/// A point on a ranking curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// X coordinate (recall for PR, FPR for ROC).
    pub x: f64,
    /// Y coordinate (precision for PR, TPR for ROC).
    pub y: f64,
}

/// Ranking evaluation of one method's scores against gold labels.
#[derive(Debug, Clone)]
pub struct RankedEval {
    /// PR-curve points, from the top of the ranking to the bottom.
    pub pr_curve: Vec<CurvePoint>,
    /// ROC-curve points, including the (0,0) and (1,1) anchors.
    pub roc_curve: Vec<CurvePoint>,
    /// Area under the PR curve (step interpolation = average precision).
    pub auc_pr: f64,
    /// Area under the ROC curve (trapezoidal).
    pub auc_roc: f64,
}

/// Rank labelled triples by score (descending, tie-aware) and compute both
/// curves. Unlabelled triples are ignored.
pub fn ranked_eval(gold: &GoldLabels, scores: &[f64]) -> RankedEval {
    // Collect (score, truth) for labelled triples.
    let mut rows: Vec<(f64, bool)> = gold
        .iter_labelled()
        .map(|(t, truth)| (scores.get(t.index()).copied().unwrap_or(0.0), truth))
        .collect();
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let total_true = rows.iter().filter(|r| r.1).count() as f64;
    let total_false = rows.len() as f64 - total_true;

    let mut pr = Vec::new();
    let mut roc = vec![CurvePoint { x: 0.0, y: 0.0 }];
    let mut tp = 0.0f64;
    let mut fp = 0.0f64;
    let mut auc_pr = 0.0f64;
    let mut auc_roc = 0.0f64;

    let mut i = 0;
    while i < rows.len() {
        // Process the whole tie block at once.
        let mut j = i;
        let (mut block_tp, mut block_fp) = (0.0f64, 0.0f64);
        while j < rows.len() && rows[j].0 == rows[i].0 {
            if rows[j].1 {
                block_tp += 1.0;
            } else {
                block_fp += 1.0;
            }
            j += 1;
        }
        let (prev_tp, prev_fp) = (tp, fp);
        tp += block_tp;
        fp += block_fp;

        // PR: average precision contribution — precision after the block
        // times the recall gained, using linear interpolation within the
        // block (Davis & Goadrich).
        if total_true > 0.0 && block_tp > 0.0 {
            // Interpolate precision across the block.
            let steps = block_tp as usize;
            for k in 1..=steps {
                let frac = k as f64 / block_tp;
                let itp = prev_tp + block_tp * frac;
                let ifp = prev_fp + block_fp * frac;
                let precision = itp / (itp + ifp);
                auc_pr += precision / total_true;
            }
        }
        if total_true > 0.0 {
            pr.push(CurvePoint {
                x: tp / total_true,
                y: if tp + fp > 0.0 { tp / (tp + fp) } else { 1.0 },
            });
        }

        // ROC: trapezoid over the block.
        if total_true > 0.0 && total_false > 0.0 {
            let x0 = prev_fp / total_false;
            let x1 = fp / total_false;
            let y0 = prev_tp / total_true;
            let y1 = tp / total_true;
            auc_roc += (x1 - x0) * (y0 + y1) / 2.0;
            roc.push(CurvePoint { x: x1, y: y1 });
        }
        i = j;
    }
    if roc.last().map(|p| (p.x, p.y)) != Some((1.0, 1.0)) && total_false > 0.0 && total_true > 0.0 {
        roc.push(CurvePoint { x: 1.0, y: 1.0 });
    }

    RankedEval {
        pr_curve: pr,
        roc_curve: roc,
        auc_pr,
        auc_roc,
    }
}

/// Downsample a curve to at most `n` points (keeping endpoints) for
/// compact textual output.
pub fn downsample(curve: &[CurvePoint], n: usize) -> Vec<CurvePoint> {
    if curve.len() <= n || n < 2 {
        return curve.to_vec();
    }
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let idx = k * (curve.len() - 1) / (n - 1);
        out.push(curve[idx]);
    }
    out
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use corrfuse_core::dataset::{Dataset, DatasetBuilder};

    /// Dataset with 4 labelled triples; scores passed per test.
    fn ds(n: usize, truths: &[bool]) -> Dataset {
        let mut b = DatasetBuilder::new();
        let s = b.source("A");
        for i in 0..n {
            let t = b.triple(format!("e{i}"), "p", "v");
            b.observe(s, t);
            b.label(t, truths[i]);
        }
        b.build().unwrap()
    }

    #[test]
    fn perfect_ranking_has_auc_one() {
        let ds = ds(4, &[true, true, false, false]);
        let scores = [0.9, 0.8, 0.2, 0.1];
        let ev = ranked_eval(ds.gold().unwrap(), &scores);
        assert!((ev.auc_roc - 1.0).abs() < 1e-12, "auc_roc {}", ev.auc_roc);
        assert!((ev.auc_pr - 1.0).abs() < 1e-12, "auc_pr {}", ev.auc_pr);
    }

    #[test]
    fn inverted_ranking_has_auc_zero_roc() {
        let ds = ds(4, &[false, false, true, true]);
        let scores = [0.9, 0.8, 0.2, 0.1];
        let ev = ranked_eval(ds.gold().unwrap(), &scores);
        assert!(ev.auc_roc < 1e-12);
        // AP of the worst ranking: true items at ranks 3 and 4.
        let expected_ap = (1.0 / 3.0 + 2.0 / 4.0) / 2.0;
        assert!((ev.auc_pr - expected_ap).abs() < 1e-12);
    }

    #[test]
    fn random_uniform_scores_tie_block() {
        // All scores tied: ROC AUC must be exactly 0.5 with tie-aware
        // handling (naive sorted walks give order-dependent results).
        let ds = ds(6, &[true, false, true, false, true, false]);
        let scores = [0.5; 6];
        let ev = ranked_eval(ds.gold().unwrap(), &scores);
        assert!((ev.auc_roc - 0.5).abs() < 1e-12, "auc_roc {}", ev.auc_roc);
        // Single PR point at (1.0, base rate).
        assert_eq!(ev.pr_curve.len(), 1);
        assert!((ev.pr_curve[0].y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_values_are_bounded() {
        let ds = ds(5, &[true, false, true, true, false]);
        let scores = [0.3, 0.9, 0.5, 0.5, 0.2];
        let ev = ranked_eval(ds.gold().unwrap(), &scores);
        assert!((0.0..=1.0).contains(&ev.auc_pr));
        assert!((0.0..=1.0).contains(&ev.auc_roc));
        // Curves are monotone in recall.
        for w in ev.pr_curve.windows(2) {
            assert!(w[1].x >= w[0].x - 1e-12);
        }
        for w in ev.roc_curve.windows(2) {
            assert!(w[1].x >= w[0].x - 1e-12);
            assert!(w[1].y >= w[0].y - 1e-12);
        }
    }

    #[test]
    fn roc_curve_is_anchored() {
        let ds = ds(4, &[true, true, false, false]);
        let scores = [0.9, 0.8, 0.2, 0.1];
        let ev = ranked_eval(ds.gold().unwrap(), &scores);
        assert_eq!(ev.roc_curve.first().map(|p| (p.x, p.y)), Some((0.0, 0.0)));
        assert_eq!(ev.roc_curve.last().map(|p| (p.x, p.y)), Some((1.0, 1.0)));
    }

    #[test]
    fn better_method_has_higher_auc() {
        let ds = ds(6, &[true, true, true, false, false, false]);
        let good = [0.9, 0.85, 0.7, 0.6, 0.3, 0.2];
        let bad = [0.9, 0.2, 0.6, 0.85, 0.3, 0.7];
        let g = ranked_eval(ds.gold().unwrap(), &good);
        let b = ranked_eval(ds.gold().unwrap(), &bad);
        assert!(g.auc_roc > b.auc_roc);
        assert!(g.auc_pr > b.auc_pr);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let curve: Vec<CurvePoint> = (0..100)
            .map(|i| CurvePoint {
                x: i as f64 / 99.0,
                y: 1.0 - i as f64 / 99.0,
            })
            .collect();
        let d = downsample(&curve, 5);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0], curve[0]);
        assert_eq!(d[4], curve[99]);
        // Short curves pass through unchanged.
        assert_eq!(downsample(&curve[..3], 5).len(), 3);
    }
}
