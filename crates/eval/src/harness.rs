//! The method registry: one entry point to run any fusion method on any
//! dataset and collect scores, decisions and timings.

use std::time::Instant;

use corrfuse_baselines::estimates::{cosine, three_estimates, two_estimates, EstimatesConfig};
use corrfuse_baselines::ltm::{run as ltm_run, LtmConfig};
use corrfuse_baselines::voting::UnionK;
use corrfuse_core::dataset::Dataset;
use corrfuse_core::engine::ScoringEngine;
use corrfuse_core::error::Result;
use corrfuse_core::fuser::{ClusterStrategy, Fuser, FuserConfig, Method};

use crate::curves::{ranked_eval, RankedEval};
use crate::metrics::{Confusion, Prf};

/// Every method the evaluation can run, with its parameters.
#[derive(Debug, Clone)]
pub enum MethodSpec {
    /// UNION-K voting.
    Union(f64),
    /// COSINE (Galland et al.).
    Cosine,
    /// 2-ESTIMATES (Galland et al.).
    TwoEstimates,
    /// 3-ESTIMATES (Galland et al.).
    ThreeEstimates,
    /// Latent Truth Model (Zhao et al.).
    Ltm(LtmConfig),
    /// PrecRec (§3).
    PrecRec,
    /// PrecRecCorr exact (§4.1).
    PrecRecCorr,
    /// Aggressive approximation (§4.2).
    Aggressive,
    /// Elastic approximation at a level (§4.3).
    Elastic(usize),
}

impl MethodSpec {
    /// Display name, matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            MethodSpec::Union(k) => format!("Union-{}", *k as u32),
            MethodSpec::Cosine => "Cosine".to_string(),
            MethodSpec::TwoEstimates => "2-Estimates".to_string(),
            MethodSpec::ThreeEstimates => "3-Estimates".to_string(),
            MethodSpec::Ltm(_) => "LTM".to_string(),
            MethodSpec::PrecRec => "PrecRec".to_string(),
            MethodSpec::PrecRecCorr => "PrecRecCorr".to_string(),
            MethodSpec::Aggressive => "PrecRecCorr-Aggr".to_string(),
            MethodSpec::Elastic(l) => format!("PrecRecCorr-Lvl{l}"),
        }
    }

    /// The default LTM baseline configuration.
    pub fn ltm_default() -> Self {
        MethodSpec::Ltm(LtmConfig::default())
    }

    /// The paper's headline method line-up for Figures 4–7: UNION-25/50/75,
    /// 3-Estimates, LTM, PrecRec, PrecRecCorr (exact or elastic).
    pub fn paper_lineup(corr: MethodSpec) -> Vec<MethodSpec> {
        vec![
            MethodSpec::Union(25.0),
            MethodSpec::Union(50.0),
            MethodSpec::Union(75.0),
            MethodSpec::ThreeEstimates,
            MethodSpec::ltm_default(),
            MethodSpec::PrecRec,
            corr,
        ]
    }
}

/// Scores plus threshold-free decisions for one method run.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// Truthfulness score per triple (higher = more likely true).
    pub scores: Vec<f64>,
    /// Binary accept decisions (method-native thresholds).
    pub decisions: Vec<bool>,
    /// Wall-clock seconds for fit + score.
    pub seconds: f64,
}

/// Run a method on a labelled dataset (the gold labels double as training
/// data, per the paper's protocol).
pub fn run_method(ds: &Dataset, spec: &MethodSpec) -> Result<MethodRun> {
    let gold = ds.require_gold()?;
    let start = Instant::now();
    let (scores, decisions) = match spec {
        MethodSpec::Union(k) => {
            let u = UnionK::new(*k);
            (u.score_all(ds), u.decide(ds))
        }
        MethodSpec::Cosine => {
            let r = cosine(ds, &EstimatesConfig::default());
            let d = r.decide();
            (r.truth, d)
        }
        MethodSpec::TwoEstimates => {
            let r = two_estimates(ds, &EstimatesConfig::default());
            let d = r.decide();
            (r.truth, d)
        }
        MethodSpec::ThreeEstimates => {
            let r = three_estimates(ds, &EstimatesConfig::default());
            let d = r.decide();
            (r.truth, d)
        }
        MethodSpec::Ltm(cfg) => {
            let r = ltm_run(ds, cfg);
            let d = r.decide();
            (r.truth, d)
        }
        MethodSpec::PrecRec => fuse(ds, Method::PrecRec)?,
        MethodSpec::PrecRecCorr => fuse(ds, Method::Exact)?,
        MethodSpec::Aggressive => fuse(ds, Method::Aggressive)?,
        MethodSpec::Elastic(l) => fuse(ds, Method::Elastic(*l))?,
    };
    let seconds = start.elapsed().as_secs_f64();
    let _ = gold;
    Ok(MethodRun {
        scores,
        decisions,
        seconds,
    })
}

fn fuse(ds: &Dataset, method: Method) -> Result<(Vec<f64>, Vec<bool>)> {
    let config = FuserConfig::new(method).with_strategy(ClusterStrategy::Auto);
    let fuser = Fuser::fit(&config, ds, ds.require_gold()?)?;
    let scores = fuser.score_all_with(ds, &ScoringEngine::parallel())?;
    let decisions = scores.iter().map(|&p| p > 0.5).collect();
    Ok((scores, decisions))
}

/// Full evaluation of one method: binary metrics + ranking AUCs + runtime.
#[derive(Debug, Clone)]
pub struct MethodReport {
    /// Method display name.
    pub name: String,
    /// Precision/recall/F1 at the method's native threshold.
    pub prf: Prf,
    /// Ranking analysis (PR and ROC curves with areas).
    pub ranked: RankedEval,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Run and evaluate one method.
pub fn evaluate_method(ds: &Dataset, spec: &MethodSpec) -> Result<MethodReport> {
    let gold = ds.require_gold()?.clone();
    let run = run_method(ds, spec)?;
    let confusion = Confusion::from_decisions(&gold, &run.decisions);
    let ranked = ranked_eval(&gold, &run.scores);
    Ok(MethodReport {
        name: spec.name(),
        prf: confusion.into(),
        ranked,
        seconds: run.seconds,
    })
}

/// Evaluate a list of methods on one dataset.
pub fn evaluate_all(ds: &Dataset, specs: &[MethodSpec]) -> Result<Vec<MethodReport>> {
    specs.iter().map(|s| evaluate_method(ds, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_synth::motivating::figure1;

    #[test]
    fn union_run_matches_voting_module() {
        let ds = figure1();
        let run = run_method(&ds, &MethodSpec::Union(50.0)).unwrap();
        assert_eq!(run.decisions.iter().filter(|&&d| d).count(), 7);
    }

    #[test]
    fn precrec_report_on_figure1() {
        let ds = figure1();
        let rep = evaluate_method(&ds, &MethodSpec::PrecRec).unwrap();
        assert!((rep.prf.precision - 0.75).abs() < 1e-9);
        assert!((rep.prf.recall - 1.0).abs() < 1e-9);
        assert!(rep.seconds >= 0.0);
    }

    #[test]
    fn preccorr_beats_precrec_on_figure1() {
        let ds = figure1();
        let reports = evaluate_all(&ds, &[MethodSpec::PrecRec, MethodSpec::PrecRecCorr]).unwrap();
        assert!(reports[1].prf.f1 > reports[0].prf.f1);
        assert!(reports[1].ranked.auc_pr >= reports[0].ranked.auc_pr - 1e-9);
    }

    #[test]
    fn every_method_runs_on_figure1() {
        let ds = figure1();
        let specs = [
            MethodSpec::Union(25.0),
            MethodSpec::Cosine,
            MethodSpec::TwoEstimates,
            MethodSpec::ThreeEstimates,
            MethodSpec::ltm_default(),
            MethodSpec::PrecRec,
            MethodSpec::PrecRecCorr,
            MethodSpec::Aggressive,
            MethodSpec::Elastic(2),
        ];
        for spec in &specs {
            let rep = evaluate_method(&ds, spec).unwrap();
            assert!(
                rep.prf.f1.is_finite(),
                "{} produced non-finite f1",
                spec.name()
            );
            assert!((0.0..=1.0).contains(&rep.ranked.auc_roc), "{}", spec.name());
        }
    }

    #[test]
    fn names_match_paper_terms() {
        assert_eq!(MethodSpec::Union(25.0).name(), "Union-25");
        assert_eq!(MethodSpec::ThreeEstimates.name(), "3-Estimates");
        assert_eq!(MethodSpec::Elastic(3).name(), "PrecRecCorr-Lvl3");
        let lineup = MethodSpec::paper_lineup(MethodSpec::PrecRecCorr);
        assert_eq!(lineup.len(), 7);
        assert_eq!(lineup[6].name(), "PrecRecCorr");
    }
}
