//! The blocking [`Client`]: connect/retry, pipelined batch sends with
//! at-least-once resend across reconnects, and a read-your-writes
//! [`Client::flush`].
//!
//! # Delivery semantics
//!
//! Ingest is **pipelined**: [`Client::ingest`] writes the batch and
//! returns without waiting for the server's ack; acks drain lazily
//! (when the in-flight window fills) or explicitly via
//! [`Client::sync`] / [`Client::flush`]. Every unacknowledged batch is
//! retained, and on a connection failure the client re-dials (with
//! bounded, backed-off retries) and **resends all unacked batches in
//! their original order**. A batch the server had already applied is
//! then applied twice — which is safe, because ingest events are
//! idempotent *in order*: re-registering a source/triple is a no-op,
//! claim edges and labels are absorbing. At-least-once, FIFO-per-
//! connection delivery therefore preserves the trust anchor: the
//! accumulated dataset (and so every score, bit for bit) is identical
//! to what exactly-once delivery would have produced.
//!
//! The one hazard is **reordering**, which only the `BUSY` path can
//! introduce: a `BUSY` response means *that batch was rejected* while
//! later pipelined batches may have been accepted. The client retries
//! `BUSY` batches transparently (see [`ClientConfig::busy_backoff`]),
//! but a producer whose batches register new sources/triples should
//! either keep [`ClientConfig::max_in_flight`] at 1 when talking to a
//! `Reject`/`Timeout`-backpressure deployment, or rely on the default
//! `Block` policy, under which `BUSY` is never emitted and pipelining
//! is unconditionally order-safe. `docs/PROTOCOL.md` §Backpressure
//! spells out the contract.

use std::collections::VecDeque;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use corrfuse_serve::TenantId;
use corrfuse_stream::Event;

use crate::error::{ErrorCode, NetError, Result};
use crate::frame::{Frame, FrameError, VERSION};
use crate::wire::{Request, Response, WireStats};

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connection attempts per dial (initial connect and every
    /// reconnect): 1 try plus `connect_retries` retries.
    pub connect_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Maximum unacknowledged pipelined ingest batches before a send
    /// first drains one ack. 1 disables pipelining (strictly
    /// synchronous, immune to `BUSY` reordering).
    pub max_in_flight: usize,
    /// How many times a `BUSY` rejection of one batch is retried before
    /// surfacing it to the caller.
    pub busy_retries: u32,
    /// Pause before resending a `BUSY` batch; doubles per retry.
    pub busy_backoff: Duration,
    /// Credential presented in every HELLO (initial dial and every
    /// reconnect). `None` (the default) connects unauthenticated —
    /// fine against an open server, `FORBIDDEN` on tenant-scoped
    /// requests against an ACL-configured one.
    pub credential: Option<String>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_retries: 4,
            retry_backoff: Duration::from_millis(25),
            max_in_flight: 64,
            busy_retries: 16,
            busy_backoff: Duration::from_millis(2),
            credential: None,
        }
    }
}

impl ClientConfig {
    /// The defaults: 4 reconnect retries from 25 ms, 64-batch pipeline,
    /// 16 `BUSY` retries from 2 ms.
    pub fn new() -> ClientConfig {
        ClientConfig::default()
    }

    /// Set the per-dial retry budget.
    pub fn with_connect_retries(mut self, retries: u32, backoff: Duration) -> ClientConfig {
        self.connect_retries = retries;
        self.retry_backoff = backoff;
        self
    }

    /// Set the pipelining window (1 = synchronous).
    pub fn with_max_in_flight(mut self, n: usize) -> ClientConfig {
        self.max_in_flight = n.max(1);
        self
    }

    /// Set the `BUSY` retry budget.
    pub fn with_busy_retries(mut self, retries: u32, backoff: Duration) -> ClientConfig {
        self.busy_retries = retries;
        self.busy_backoff = backoff;
        self
    }

    /// Present `credential` in every HELLO (see
    /// [`ClientConfig::credential`]).
    pub fn with_credential(mut self, credential: impl Into<String>) -> ClientConfig {
        self.credential = Some(credential.into());
        self
    }
}

/// One unacknowledged ingest batch: the encoded `INGEST` frame bytes,
/// kept verbatim for resend (encoding is deterministic and immutable,
/// so BUSY retries and reconnect resends rewrite the same bytes with no
/// re-encoding or event clones).
#[derive(Debug, Clone)]
struct Pending {
    bytes: Vec<u8>,
    busy_attempts: u32,
}

/// The blocking protocol client; see the module docs.
#[derive(Debug)]
pub struct Client {
    addr: String,
    config: ClientConfig,
    stream: Option<TcpStream>,
    /// Sent-but-unacked ingest batches, oldest first (responses arrive
    /// in request order, so the front is always the next ack's batch).
    in_flight: VecDeque<Pending>,
    /// Total reconnects performed (initial connect excluded).
    reconnects: u64,
    /// Total batches acknowledged by the server.
    acked: u64,
}

impl Client {
    /// Connect with the default configuration.
    pub fn connect(addr: impl Into<String>) -> Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connect with an explicit configuration (dial + HELLO handshake,
    /// with the configured retry/backoff).
    pub fn connect_with(addr: impl Into<String>, config: ClientConfig) -> Result<Client> {
        let mut client = Client {
            addr: addr.into(),
            config,
            stream: None,
            in_flight: VecDeque::new(),
            reconnects: 0,
            acked: 0,
        };
        client.dial()?;
        Ok(client)
    }

    /// The remote address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Reconnects performed so far (excluding the initial connect).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Ingest batches acknowledged by the server so far.
    pub fn acked_batches(&self) -> u64 {
        self.acked
    }

    /// Unacknowledged pipelined batches.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Dial (or re-dial), run the HELLO handshake and resend the
    /// unacked window, honouring the retry budget. Iterative — a write
    /// failure during the resend just burns one attempt.
    fn dial(&mut self) -> Result<()> {
        self.stream = None;
        let attempts = self.config.connect_retries + 1;
        let mut backoff = self.config.retry_backoff;
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            match self.try_dial() {
                Ok(mut stream) => match resend_window(&mut stream, &self.in_flight) {
                    Ok(()) => {
                        self.stream = Some(stream);
                        return Ok(());
                    }
                    Err(e) => last = e.to_string(),
                },
                // A typed server rejection (UNSUPPORTED_VERSION, ...)
                // is deterministic — retrying cannot succeed, and the
                // caller needs the code, not a flattened string.
                Err(e @ NetError::Remote { .. }) => return Err(e),
                Err(e) => last = e.to_string(),
            }
        }
        Err(NetError::RetriesExhausted { attempts, last })
    }

    fn try_dial(&self) -> Result<TcpStream> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true).ok();
        Request::Hello {
            min_version: VERSION,
            max_version: VERSION,
            credential: self.config.credential.clone(),
        }
        .to_frame()
        .write_to(&mut stream)?;
        stream.flush()?;
        match read_response(&mut stream)? {
            Response::HelloOk { version } if version == VERSION => Ok(stream),
            Response::HelloOk { version } => Err(NetError::Protocol(format!(
                "server negotiated unknown version {version}"
            ))),
            Response::Error { code, message } => Err(NetError::Remote { code, message }),
            other => Err(NetError::Protocol(format!(
                "expected HELLO_OK, got {other:?}"
            ))),
        }
    }

    /// Drop the connection (as a crashed network would), keeping the
    /// unacked pipeline. The next operation reconnects and resends —
    /// this is how tests and the examples force mid-stream reconnects.
    pub fn disconnect(&mut self) {
        self.stream = None;
    }

    /// Reconnect now: dial + handshake + resend of every unacked batch,
    /// in original order (see the module docs for why in-order
    /// duplicates are harmless). Called automatically by operations
    /// that hit a transport error.
    pub fn reconnect(&mut self) -> Result<()> {
        self.reconnects += 1;
        self.dial()
    }

    fn stream(&mut self) -> Result<&mut TcpStream> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        Ok(self.stream.as_mut().expect("connected stream"))
    }

    /// Append one batch to the unacked window and put it on the wire.
    /// A write failure routes through [`Client::reconnect`], whose
    /// window resend includes this batch (it is already queued).
    fn send_pending(&mut self, p: Pending) -> Result<()> {
        self.in_flight.push_back(p);
        if self.stream.is_none() {
            return self.reconnect();
        }
        let bytes = &self.in_flight.back().expect("just pushed").bytes;
        let stream = self.stream.as_mut().expect("connected stream");
        let written = stream.write_all(bytes).and_then(|()| stream.flush());
        match written {
            Ok(()) => Ok(()),
            Err(_) => self.reconnect(),
        }
    }

    /// Pipelined ingest: send one tenant-scoped batch, drain acks only
    /// when the in-flight window is full. Returns once the batch is on
    /// the wire (or queued for the in-progress reconnect) — call
    /// [`Client::sync`] or [`Client::flush`] to wait for
    /// acknowledgements.
    pub fn ingest(&mut self, tenant: TenantId, events: &[Event]) -> Result<()> {
        while self.in_flight.len() >= self.config.max_in_flight {
            self.drain_one_ack()?;
        }
        let frame = Request::ingest_frame(tenant, events);
        if !frame.fits() {
            // The peer's decoder is required to reject oversized
            // frames; refuse locally with the same typed error instead
            // of wedging the connection. Split the batch to proceed.
            return Err(NetError::Frame(frame.oversize_error()));
        }
        self.send_pending(Pending {
            bytes: frame.encode(),
            busy_attempts: 0,
        })
    }

    /// Wait for every pipelined batch to be acknowledged (retrying
    /// `BUSY` rejections and reconnecting on transport errors).
    pub fn sync(&mut self) -> Result<()> {
        while !self.in_flight.is_empty() {
            self.drain_one_ack()?;
        }
        Ok(())
    }

    /// Read one ack off the wire and resolve the oldest in-flight
    /// batch.
    fn drain_one_ack(&mut self) -> Result<()> {
        debug_assert!(!self.in_flight.is_empty());
        let response = {
            let stream = self.stream()?;
            match read_response(stream) {
                Ok(r) => r,
                Err(NetError::Io(_)) | Err(NetError::Frame(FrameError::Truncated { .. })) => {
                    // Connection died with acks outstanding — cleanly
                    // (EOF/reset surfaces as Io) or mid-frame (a torn
                    // response surfaces as Truncated): resend the
                    // window and try again.
                    self.reconnect()?;
                    return Ok(());
                }
                Err(e) => {
                    // Any other framing/protocol error leaves the byte
                    // stream possibly misaligned; discard it so the
                    // next operation re-dials and resends rather than
                    // reading garbage mid-frame forever.
                    self.stream = None;
                    return Err(e);
                }
            }
        };
        match response {
            Response::IngestOk { .. } => {
                self.in_flight.pop_front();
                self.acked += 1;
                Ok(())
            }
            Response::Error { code, message }
                if code == ErrorCode::Busy || code == ErrorCode::Migrating =>
            {
                // Both clear on their own: BUSY as the queue drains,
                // MIGRATING as the tenant's cut-over window closes (the
                // retry then lands on whichever shard serves the tenant).
                let mut p = self.in_flight.pop_front().expect("in-flight batch");
                if p.busy_attempts >= self.config.busy_retries {
                    // Out of retries: the batch is definitively not
                    // applied; surface it and keep the pipeline sane.
                    return Err(NetError::Remote { code, message });
                }
                let pause = self
                    .config
                    .busy_backoff
                    .saturating_mul(1u32 << p.busy_attempts.min(16));
                p.busy_attempts += 1;
                std::thread::sleep(pause);
                self.send_pending(p)
            }
            Response::Error { code, message } => {
                // A fatal rejection (poisoned shard, unknown tenant,
                // shutdown): the server answered — the batch is
                // resolved, just negatively. Drop it from the window so
                // later operations do not wait for a second response
                // that will never come.
                self.in_flight.pop_front();
                Err(NetError::Remote { code, message })
            }
            other => Err(NetError::Protocol(format!(
                "expected INGEST_OK, got {other:?}"
            ))),
        }
    }

    /// Read-your-writes barrier: drain every ack, then ask the server
    /// to apply everything accepted so far. After `flush()` returns,
    /// [`Client::scores`] observes every batch this client ingested.
    pub fn flush(&mut self) -> Result<()> {
        self.sync()?;
        match self.request(Request::Flush)? {
            Response::FlushOk => Ok(()),
            other => unexpected("FLUSH_OK", other),
        }
    }

    /// Posterior scores of `tenant`, in tenant-local `TripleId` order.
    /// The f64 bit patterns travel verbatim: remote reads are bitwise
    /// identical to in-process `ShardRouter::scores`.
    pub fn scores(&mut self, tenant: TenantId) -> Result<Vec<f64>> {
        self.sync()?;
        match self.request(Request::Scores {
            tenant,
            min_epoch: None,
        })? {
            Response::ScoresOk { scores } => Ok(scores),
            other => unexpected("SCORES_OK", other),
        }
    }

    /// Bounded-staleness scores: like [`Client::scores`], but the
    /// answering server (typically a read replica) must have reached
    /// `min_epoch` on the tenant's shard. A server that has not yet
    /// caught up answers with the **retryable** `STALE` error
    /// ([`ErrorCode::Stale`], surfaced as [`NetError::Remote`]) — back
    /// off and resend, or read from the leader.
    pub fn scores_at(&mut self, tenant: TenantId, min_epoch: u64) -> Result<Vec<f64>> {
        self.sync()?;
        match self.request(Request::Scores {
            tenant,
            min_epoch: Some(min_epoch),
        })? {
            Response::ScoresOk { scores } => Ok(scores),
            other => unexpected("SCORES_OK", other),
        }
    }

    /// Accept/reject decisions of `tenant` at the router threshold.
    pub fn decisions(&mut self, tenant: TenantId) -> Result<Vec<bool>> {
        self.sync()?;
        match self.request(Request::Decisions {
            tenant,
            min_epoch: None,
        })? {
            Response::DecisionsOk { decisions } => Ok(decisions),
            other => unexpected("DECISIONS_OK", other),
        }
    }

    /// Bounded-staleness decisions; see [`Client::scores_at`].
    pub fn decisions_at(&mut self, tenant: TenantId, min_epoch: u64) -> Result<Vec<bool>> {
        self.sync()?;
        match self.request(Request::Decisions {
            tenant,
            min_epoch: Some(min_epoch),
        })? {
            Response::DecisionsOk { decisions } => Ok(decisions),
            other => unexpected("DECISIONS_OK", other),
        }
    }

    /// Per-connection and per-shard statistics.
    pub fn stats(&mut self) -> Result<WireStats> {
        self.sync()?;
        match self.request(Request::Stats { min_epoch: None })? {
            Response::StatsOk { stats } => Ok(stats),
            other => unexpected("STATS_OK", other),
        }
    }

    /// Bounded-staleness statistics: every shard in the reply must have
    /// reached `min_epoch`; see [`Client::scores_at`]. The leader
    /// ignores the floor (its stats are never stale).
    pub fn stats_at(&mut self, min_epoch: u64) -> Result<WireStats> {
        self.sync()?;
        match self.request(Request::Stats {
            min_epoch: Some(min_epoch),
        })? {
            Response::StatsOk { stats } => Ok(stats),
            other => unexpected("STATS_OK", other),
        }
    }

    /// Self-describing metrics snapshot: the server's registered
    /// counters, gauges and latency histograms (when the server runs
    /// with a metrics registry) plus the always-present router-derived
    /// series. Entries are sorted by name; histograms convert to
    /// quantile-readable snapshots via
    /// [`crate::wire::WireHistogram::to_snapshot`].
    pub fn metrics(&mut self) -> Result<Vec<crate::wire::WireMetric>> {
        self.sync()?;
        match self.request(Request::Metrics)? {
            Response::MetricsOk { metrics } => Ok(metrics),
            other => unexpected("METRICS_OK", other),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        self.sync()?;
        match self.request(Request::Ping)? {
            Response::Pong => Ok(()),
            other => unexpected("PONG", other),
        }
    }

    /// Ask the server to shut down (only honoured when the server
    /// enables remote shutdown; otherwise a `FORBIDDEN` error).
    pub fn shutdown_server(&mut self) -> Result<()> {
        self.sync()?;
        match self.request(Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            other => unexpected("SHUTDOWN_OK", other),
        }
    }

    /// Send one synchronous request and read its response (only valid
    /// with an empty pipeline; callers `sync()` first). `Error`
    /// responses surface as [`NetError::Remote`].
    fn request(&mut self, request: Request) -> Result<Response> {
        debug_assert!(self.in_flight.is_empty(), "sync() before request()");
        let frame = request.to_frame();
        // All synchronous requests are idempotent (queries, barriers,
        // probes), so a connection that died since the last operation
        // gets one transparent reconnect-and-retry; the dead stream is
        // always discarded so the *next* call re-dials too.
        for attempt in 0..2 {
            let stream = self.stream()?;
            let exchanged = frame
                .write_to(stream)
                .and_then(|()| Ok(stream.flush()?))
                .and_then(|()| read_response(stream));
            match exchanged {
                Ok(Response::Error { code, message }) => {
                    return Err(NetError::Remote { code, message })
                }
                Ok(other) => return Ok(other),
                Err(NetError::Io(_)) | Err(NetError::Frame(FrameError::Truncated { .. }))
                    if attempt == 0 =>
                {
                    self.stream = None;
                }
                Err(e) => {
                    self.stream = None;
                    return Err(e);
                }
            }
        }
        unreachable!("second attempt returns")
    }
}

fn unexpected<T>(wanted: &str, got: Response) -> Result<T> {
    Err(NetError::Protocol(format!(
        "expected {wanted}, got {got:?}"
    )))
}

/// Write every window batch to a fresh connection, oldest first (the
/// retained encoded bytes go out verbatim — no re-encoding).
fn resend_window(stream: &mut TcpStream, window: &VecDeque<Pending>) -> Result<()> {
    for p in window {
        stream.write_all(&p.bytes)?;
    }
    stream.flush()?;
    Ok(())
}

fn read_response(stream: &mut TcpStream) -> Result<Response> {
    match Frame::read_from(stream)? {
        Some(frame) => Ok(Response::from_frame(&frame)?),
        None => Err(NetError::Io("connection closed by server".to_string())),
    }
}
