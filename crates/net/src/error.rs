//! Error types for the network layer, including the protocol-level
//! error codes carried by `ERROR` frames.

use std::fmt;

use corrfuse_serve::ServeError;

use crate::frame::FrameError;

/// Protocol error codes (the `u16` in an `ERROR` frame). The normative
/// list lives in `docs/PROTOCOL.md`; codes are stable across protocol
/// versions — new codes may be added, existing ones never renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// The request could not be decoded (bad payload, wrong state —
    /// e.g. a request before `HELLO`).
    Malformed = 1,
    /// Version negotiation failed: no common protocol version.
    UnsupportedVersion = 2,
    /// The referenced tenant is not hosted by this router.
    UnknownTenant = 3,
    /// The target shard's queue is full and the router's backpressure
    /// policy gave up. **Retryable** — back off and resend.
    Busy = 4,
    /// The target shard is poisoned (a post-validation error left it in
    /// an undefined state). **Not retryable** — the shard must be
    /// rebuilt from its journal; see `corrfuse_serve::ServeError`.
    ShardPoisoned = 5,
    /// The router/server is shutting down; no new work is accepted.
    ShuttingDown = 6,
    /// The request is valid but this server refuses it (e.g. `SHUTDOWN`
    /// when remote shutdown is disabled).
    Forbidden = 7,
    /// Any other server-side failure.
    Internal = 8,
    /// A bounded-staleness read (`min_epoch` on `SCORES` / `DECISIONS`
    /// / `STATS`) demanded an epoch the answering replica has not
    /// reached. **Retryable** — the replica is catching up; back off
    /// and resend, or lower `min_epoch`.
    Stale = 9,
    /// The referenced tenant is mid-migration between shards and the
    /// cut-over window could not absorb this request. **Retryable** —
    /// the window closes within one flush of the target shard; back off
    /// and resend (the retry lands on whichever shard serves the tenant
    /// by then, transparently).
    Migrating = 10,
}

impl ErrorCode {
    /// Decode a wire code.
    pub fn from_code(code: u16) -> Option<ErrorCode> {
        use ErrorCode::*;
        [
            Malformed,
            UnsupportedVersion,
            UnknownTenant,
            Busy,
            ShardPoisoned,
            ShuttingDown,
            Forbidden,
            Internal,
            Stale,
            Migrating,
        ]
        .into_iter()
        .find(|c| *c as u16 == code)
    }

    /// Whether a client may retry the exact same request and expect it
    /// to eventually succeed. [`ErrorCode::Busy`] (queue pressure
    /// drains), [`ErrorCode::Stale`] (the replica catches up) and
    /// [`ErrorCode::Migrating`] (the cut-over window closes) qualify.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Busy | ErrorCode::Stale | ErrorCode::Migrating
        )
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "MALFORMED",
            ErrorCode::UnsupportedVersion => "UNSUPPORTED_VERSION",
            ErrorCode::UnknownTenant => "UNKNOWN_TENANT",
            ErrorCode::Busy => "BUSY",
            ErrorCode::ShardPoisoned => "SHARD_POISONED",
            ErrorCode::ShuttingDown => "SHUTTING_DOWN",
            ErrorCode::Forbidden => "FORBIDDEN",
            ErrorCode::Internal => "INTERNAL",
            ErrorCode::Stale => "STALE",
            ErrorCode::Migrating => "MIGRATING",
        };
        write!(f, "{name}({})", *self as u16)
    }
}

/// Map a router error onto the protocol error code a server reports for
/// it. This is the single point where serving-layer semantics become
/// wire semantics — notably `Backpressure` → retryable [`ErrorCode::Busy`]
/// versus `ShardPoisoned` → fatal [`ErrorCode::ShardPoisoned`].
pub fn code_of(e: &ServeError) -> ErrorCode {
    match e {
        ServeError::Backpressure { .. } => ErrorCode::Busy,
        ServeError::ShardPoisoned { .. } => ErrorCode::ShardPoisoned,
        ServeError::UnknownTenant(_) => ErrorCode::UnknownTenant,
        ServeError::ShuttingDown => ErrorCode::ShuttingDown,
        ServeError::Stale { .. } => ErrorCode::Stale,
        ServeError::TenantMigrating { .. } => ErrorCode::Migrating,
        _ => ErrorCode::Internal,
    }
}

/// Errors produced by the network layer (client and server).
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A transport-level I/O failure (connect, read, write). The string
    /// is the rendered `std::io::Error`.
    Io(String),
    /// A framing violation (bad magic/version/type/length/CRC, or an
    /// undecodable payload).
    Frame(FrameError),
    /// The peer replied with an `ERROR` frame.
    Remote {
        /// The protocol error code.
        code: ErrorCode,
        /// The server's human-readable message.
        message: String,
    },
    /// The peer violated the protocol state machine (e.g. responded
    /// with an unexpected frame type).
    Protocol(String),
    /// Connect (or reconnect) retries were exhausted.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The final attempt's error, rendered.
        last: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "I/O error: {e}"),
            NetError::Frame(e) => write!(f, "{e}"),
            NetError::Remote { code, message } => write!(f, "server error {code}: {message}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "gave up after {attempts} connection attempts (last: {last})"
                )
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, NetError>;
