//! The message layer: typed [`Request`]s and [`Response`]s over
//! [`Frame`]s.
//!
//! Every payload layout here is specified byte-for-byte in
//! `docs/PROTOCOL.md`. Integers are little-endian. The `INGEST` payload
//! embeds the journal event codec ([`corrfuse_stream::codec`]) as UTF-8
//! text — exactly one `+B`-terminated batch — which is what makes a
//! captured wire stream replayable as a journal: concatenate `INGEST`
//! payloads after a `#corrfuse-journal v1` snapshot prefix and the
//! result parses as a journal file.

use corrfuse_obs::{HistogramSnapshot, MetricSample, MetricValue, BUCKETS};
use corrfuse_serve::{RouterStats, TenantId};
use corrfuse_stream::codec;
use corrfuse_stream::Event;

use crate::error::ErrorCode;
use crate::frame::{Frame, FrameError, FrameType};

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version negotiation; MUST be the first request on a connection.
    /// Carries the inclusive range of protocol versions the client
    /// speaks, plus an optional credential for per-tenant ACLs.
    Hello {
        /// Lowest version the client accepts.
        min_version: u8,
        /// Highest version the client accepts.
        max_version: u8,
        /// Optional bearer credential (`docs/PROTOCOL.md` §4.1): an
        /// optional trailing field on the wire, absent in pre-ACL
        /// encodings, so old clients decode as unauthenticated rather
        /// than malformed. At most `u16::MAX` UTF-8 bytes. Against an
        /// ACL-configured server a missing or unknown credential still
        /// gets `HELLO_OK`; the typed `FORBIDDEN` denial happens per
        /// tenant-scoped request ([`crate::acl`]).
        credential: Option<String>,
    },
    /// One event batch for one tenant.
    Ingest {
        /// The tenant the events belong to (tenant-local ids inside).
        tenant: TenantId,
        /// The batch, in application order.
        events: Vec<Event>,
    },
    /// Posterior scores of one tenant, in tenant-local `TripleId` order.
    Scores {
        /// The queried tenant.
        tenant: TenantId,
        /// Bounded-staleness floor: answer only from state that has
        /// reached this epoch on the tenant's shard, else reply
        /// `STALE`. `None` (the wire default — the field is an optional
        /// trailing u64, absent in pre-replication encodings) reads
        /// whatever is current. The leader is authoritative and always
        /// satisfies the floor it has reached; followers gate on their
        /// applied epoch.
        min_epoch: Option<u64>,
    },
    /// Accept/reject decisions of one tenant.
    Decisions {
        /// The queried tenant.
        tenant: TenantId,
        /// Bounded-staleness floor; see [`Request::Scores::min_epoch`].
        min_epoch: Option<u64>,
    },
    /// Read-your-writes barrier over the whole router.
    Flush,
    /// Per-connection and per-shard statistics.
    Stats {
        /// Bounded-staleness floor applied to **every** shard in the
        /// reply; see [`Request::Scores::min_epoch`]. The leader
        /// ignores it (its stats are never stale).
        min_epoch: Option<u64>,
    },
    /// Liveness probe.
    Ping,
    /// Ask the server to stop accepting and shut down (honoured only
    /// when the server enables remote shutdown).
    Shutdown,
    /// Self-describing metrics snapshot: named counters, gauges and
    /// latency histograms. Unlike [`Request::Stats`]' frozen
    /// fixed-width records, the reply's entries are length-prefixed
    /// and type-tagged, so servers can add metrics without a protocol
    /// rev.
    Metrics,
    /// Open a replication subscription on `shard`, resuming after
    /// `from_epoch` (0 for a fresh follower). On success the server
    /// answers [`Response::SubscribeOk`] and the connection enters
    /// replication mode: the server pushes [`Response::Batch`] frames,
    /// the client sends only [`Request::EpochAck`].
    Subscribe {
        /// The leader shard to replicate.
        shard: u32,
        /// The follower's applied epoch: replication resumes at
        /// `from_epoch + 1`.
        from_epoch: u64,
    },
    /// Replication mode only: every batch up to `epoch` is applied on
    /// the follower. Elicits no response; the leader uses it for lag
    /// accounting (`replica_applied_epoch_shard_*` gauges).
    EpochAck {
        /// The subscribed shard (must match the subscription).
        shard: u32,
        /// The follower's new applied epoch.
        epoch: u64,
    },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Hello accepted; `version` is the negotiated protocol version
    /// (both sides speak it for the rest of the connection).
    HelloOk {
        /// The negotiated version.
        version: u8,
    },
    /// Ingest batch accepted (enqueued; not necessarily applied yet —
    /// use `Flush` for read-your-writes).
    IngestOk {
        /// 1-based count of batches this connection has had accepted.
        seq: u64,
    },
    /// Scores reply.
    ScoresOk {
        /// Posteriors in tenant-local `TripleId` order (f64 bit
        /// patterns travel verbatim, so remote reads are bitwise equal
        /// to local ones).
        scores: Vec<f64>,
    },
    /// Decisions reply.
    DecisionsOk {
        /// Accept/reject per tenant-local triple.
        decisions: Vec<bool>,
    },
    /// Barrier reached: everything accepted before the `Flush` is
    /// applied.
    FlushOk,
    /// Statistics reply.
    StatsOk {
        /// Connection + shard counters.
        stats: WireStats,
    },
    /// Liveness reply.
    Pong,
    /// The server accepted the shutdown request and will stop.
    ShutdownOk,
    /// Metrics reply; entries sorted by name.
    MetricsOk {
        /// Every metric the server chose to expose.
        metrics: Vec<WireMetric>,
    },
    /// Subscription accepted; how the follower bootstraps. Every
    /// subsequent frame on the connection is a server-pushed
    /// [`Response::Batch`].
    SubscribeOk {
        /// Resume from the follower's own state, or rebuild from a
        /// snapshot.
        start: WireSubscriptionStart,
    },
    /// One replicated batch (pushed unsolicited in replication mode).
    Batch {
        /// The shard epoch after this batch committed; consecutive
        /// `Batch` frames carry consecutive epochs.
        epoch: u64,
        /// The batch's shard-space events in the journal event codec
        /// (`corrfuse_stream::codec`): event lines plus the `+B`
        /// terminator, exactly the `INGEST` payload tail.
        text: String,
    },
    /// Typed failure; see [`ErrorCode`] for retryability.
    Error {
        /// The protocol error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// How a replication subscription begins, as carried by
/// [`Response::SubscribeOk`] (the wire shape of
/// `corrfuse_serve::SubscriptionStart`).
#[derive(Debug, Clone, PartialEq)]
pub enum WireSubscriptionStart {
    /// The leader's backlog covered `from_epoch`: the follower keeps
    /// its state and the first `BATCH` frame carries `from_epoch + 1`.
    Resume,
    /// The follower is too far behind (or brand new): it must rebuild
    /// from this snapshot, then apply the streamed batches.
    Snapshot {
        /// The shard epoch the snapshot was captured at; the first
        /// `BATCH` frame carries `epoch + 1`.
        epoch: u64,
        /// The shard session's decision threshold (f64 bits travel
        /// verbatim).
        threshold: f64,
        /// The shard's accumulated (namespaced) dataset in the
        /// `corrfuse_core::io` TSV dialect.
        dataset: String,
    },
}

/// Statistics carried by [`Response::StatsOk`]: the serving connection's
/// own counters plus a per-shard view of the router.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Frames this connection has received (requests, post-handshake).
    pub conn_frames: u64,
    /// Ingest batches this connection has had accepted.
    pub conn_batches: u64,
    /// Events across those batches.
    pub conn_events: u64,
    /// Per-shard router counters, in shard order.
    pub shards: Vec<WireShardStats>,
}

/// One shard's counters as surfaced over the wire (a stable subset of
/// `corrfuse_serve::ShardStats`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireShardStats {
    /// Shard index.
    pub shard: u32,
    /// Tenants hosted.
    pub tenants: u32,
    /// Messages applied by the shard worker.
    pub processed_messages: u64,
    /// Events ingested into the shard session.
    pub ingested_events: u64,
    /// Messages dropped because translation or ingest failed.
    pub ingest_errors: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u32,
    /// Whether the shard is poisoned (fatal; see
    /// [`ErrorCode::ShardPoisoned`]).
    pub poisoned: bool,
}

impl WireStats {
    /// Build the shard view from live router stats.
    pub fn from_router(router: &RouterStats) -> WireStats {
        WireStats {
            shards: router
                .shards
                .iter()
                .map(|s| WireShardStats {
                    shard: s.shard as u32,
                    tenants: s.tenants as u32,
                    processed_messages: s.processed_messages,
                    ingested_events: s.ingested_events,
                    ingest_errors: s.ingest_errors,
                    queue_depth: s.queue_depth as u32,
                    poisoned: s.poisoned,
                })
                .collect(),
            ..WireStats::default()
        }
    }
}

/// One named metric in a [`Response::MetricsOk`] payload.
///
/// On the wire each metric is a length-prefixed, type-tagged entry
/// (layout in `docs/PROTOCOL.md` §5.9): decoders skip entries whose tag
/// they don't know and ignore trailing bytes inside an entry, so
/// servers can ship new metric kinds — or extend existing ones — to old
/// clients without a protocol rev.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMetric {
    /// Registered metric name (catalog in `docs/OBSERVABILITY.md`).
    pub name: String,
    /// The metric's value.
    pub value: WireMetricValue,
}

/// The typed value of one [`WireMetric`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireMetricValue {
    /// Monotonic counter (wire tag 0).
    Counter(u64),
    /// Instantaneous signed gauge (wire tag 1).
    Gauge(i64),
    /// Log₂ latency histogram (wire tag 2).
    Histogram(WireHistogram),
}

/// A histogram as carried on the wire: totals plus the log₂ bucket
/// array (bucket semantics of [`corrfuse_obs::Histogram`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireHistogram {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Per-bucket counts; servers send [`BUCKETS`] buckets, decoders
    /// accept any length (forward compatibility).
    pub buckets: Vec<u64>,
}

impl WireHistogram {
    /// Convert to a [`HistogramSnapshot`] for quantile readout
    /// (`p50()`/`p99()` etc.); buckets beyond [`BUCKETS`] are dropped,
    /// missing ones read as empty.
    pub fn to_snapshot(&self) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::empty();
        for (i, &b) in self.buckets.iter().take(BUCKETS).enumerate() {
            s.buckets[i] = b;
        }
        s.count = self.count;
        s.sum = self.sum;
        s.max = self.max;
        s
    }
}

impl WireMetric {
    /// Convert a registry snapshot into wire metrics, preserving order.
    pub fn from_samples(samples: &[MetricSample]) -> Vec<WireMetric> {
        samples
            .iter()
            .map(|s| WireMetric {
                name: s.name.clone(),
                value: match &s.value {
                    MetricValue::Counter(v) => WireMetricValue::Counter(*v),
                    MetricValue::Gauge(v) => WireMetricValue::Gauge(*v),
                    MetricValue::Histogram(h) => WireMetricValue::Histogram(WireHistogram {
                        count: h.count,
                        sum: h.sum,
                        max: h.max,
                        buckets: h.buckets.to_vec(),
                    }),
                },
            })
            .collect()
    }

    /// Convert wire metrics back into registry-shaped samples (for
    /// feeding [`corrfuse_obs::export::render_text`] client-side).
    pub fn to_samples(metrics: &[WireMetric]) -> Vec<MetricSample> {
        metrics
            .iter()
            .map(|m| MetricSample {
                name: m.name.clone(),
                value: match &m.value {
                    WireMetricValue::Counter(v) => MetricValue::Counter(*v),
                    WireMetricValue::Gauge(v) => MetricValue::Gauge(*v),
                    WireMetricValue::Histogram(h) => {
                        MetricValue::Histogram(Box::new(h.to_snapshot()))
                    }
                },
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(FrameError::BadPayload(format!(
                "payload ends inside {what} ({} of {} bytes left)",
                self.buf.len() - self.pos,
                n
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self, what: &str) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn rest(self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Whether the payload is exhausted — how optional trailing fields
    /// (the `min_epoch` staleness floor) detect their absence.
    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn finish(self, what: &str) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::BadPayload(format!(
                "{} trailing bytes after {what}",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn utf8<'a>(bytes: &'a [u8], what: &str) -> Result<&'a str, FrameError> {
    std::str::from_utf8(bytes)
        .map_err(|e| FrameError::BadPayload(format!("{what} is not UTF-8: {e}")))
}

// ---------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------

impl Request {
    /// Build an `INGEST` frame from a borrowed batch (no event clone —
    /// the hot path for pipelining clients that keep the encoded bytes
    /// for resend).
    pub fn ingest_frame(tenant: TenantId, events: &[Event]) -> Frame {
        let mut payload = tenant.0.to_le_bytes().to_vec();
        payload.extend_from_slice(codec::encode_batch(events).as_bytes());
        Frame::new(FrameType::Ingest, payload)
    }

    /// The frame type this request encodes to — without encoding it
    /// (the session layer labels per-type latency series on the ingest
    /// hot path, where a throwaway `to_frame` would re-encode the whole
    /// batch).
    pub fn frame_type(&self) -> FrameType {
        match self {
            Request::Hello { .. } => FrameType::Hello,
            Request::Ingest { .. } => FrameType::Ingest,
            Request::Scores { .. } => FrameType::Scores,
            Request::Decisions { .. } => FrameType::Decisions,
            Request::Flush => FrameType::Flush,
            Request::Stats { .. } => FrameType::Stats,
            Request::Ping => FrameType::Ping,
            Request::Shutdown => FrameType::Shutdown,
            Request::Metrics => FrameType::Metrics,
            Request::Subscribe { .. } => FrameType::Subscribe,
            Request::EpochAck { .. } => FrameType::EpochAck,
        }
    }

    /// Encode the request as a frame.
    pub fn to_frame(&self) -> Frame {
        match self {
            Request::Hello {
                min_version,
                max_version,
                credential,
            } => {
                let mut payload = vec![*min_version, *max_version];
                if let Some(cred) = credential {
                    let bytes = cred.as_bytes();
                    let len =
                        u16::try_from(bytes.len()).expect("credential longer than 65535 bytes");
                    payload.extend_from_slice(&len.to_le_bytes());
                    payload.extend_from_slice(bytes);
                }
                Frame::new(FrameType::Hello, payload)
            }
            Request::Ingest { tenant, events } => Request::ingest_frame(*tenant, events),
            Request::Scores { tenant, min_epoch } => {
                let mut payload = tenant.0.to_le_bytes().to_vec();
                if let Some(e) = min_epoch {
                    payload.extend_from_slice(&e.to_le_bytes());
                }
                Frame::new(FrameType::Scores, payload)
            }
            Request::Decisions { tenant, min_epoch } => {
                let mut payload = tenant.0.to_le_bytes().to_vec();
                if let Some(e) = min_epoch {
                    payload.extend_from_slice(&e.to_le_bytes());
                }
                Frame::new(FrameType::Decisions, payload)
            }
            Request::Flush => Frame::new(FrameType::Flush, Vec::new()),
            Request::Stats { min_epoch } => Frame::new(
                FrameType::Stats,
                min_epoch.map_or_else(Vec::new, |e| e.to_le_bytes().to_vec()),
            ),
            Request::Ping => Frame::new(FrameType::Ping, Vec::new()),
            Request::Shutdown => Frame::new(FrameType::Shutdown, Vec::new()),
            Request::Metrics => Frame::new(FrameType::Metrics, Vec::new()),
            Request::Subscribe { shard, from_epoch } => {
                let mut payload = shard.to_le_bytes().to_vec();
                payload.extend_from_slice(&from_epoch.to_le_bytes());
                Frame::new(FrameType::Subscribe, payload)
            }
            Request::EpochAck { shard, epoch } => {
                let mut payload = shard.to_le_bytes().to_vec();
                payload.extend_from_slice(&epoch.to_le_bytes());
                Frame::new(FrameType::EpochAck, payload)
            }
        }
    }

    /// Decode a request frame. Response-typed frames are rejected.
    pub fn from_frame(frame: &Frame) -> Result<Request, FrameError> {
        let mut r = Reader::new(&frame.payload);
        match frame.kind {
            FrameType::Hello => {
                let min_version = r.u8("min_version")?;
                let max_version = r.u8("max_version")?;
                let credential = if r.at_end() {
                    None
                } else {
                    let len = r.u16("credential length")? as usize;
                    Some(utf8(r.take(len, "credential")?, "credential")?.to_string())
                };
                r.finish("HELLO")?;
                Ok(Request::Hello {
                    min_version,
                    max_version,
                    credential,
                })
            }
            FrameType::Ingest => {
                let tenant = TenantId(r.u32("tenant")?);
                let text = utf8(r.rest(), "INGEST event text")?;
                let parsed = codec::parse_batches(text)
                    .map_err(|e| FrameError::BadPayload(e.to_string()))?;
                if parsed.open_tail {
                    return Err(FrameError::BadPayload(
                        "INGEST batch is missing its +B terminator".to_string(),
                    ));
                }
                match <[Vec<Event>; 1]>::try_from(parsed.batches) {
                    Ok([events]) => Ok(Request::Ingest { tenant, events }),
                    Err(batches) => Err(FrameError::BadPayload(format!(
                        "INGEST carries {} batches, expected exactly 1",
                        batches.len()
                    ))),
                }
            }
            FrameType::Scores => {
                let tenant = TenantId(r.u32("tenant")?);
                let min_epoch = if r.at_end() {
                    None
                } else {
                    Some(r.u64("min_epoch")?)
                };
                r.finish("SCORES")?;
                Ok(Request::Scores { tenant, min_epoch })
            }
            FrameType::Decisions => {
                let tenant = TenantId(r.u32("tenant")?);
                let min_epoch = if r.at_end() {
                    None
                } else {
                    Some(r.u64("min_epoch")?)
                };
                r.finish("DECISIONS")?;
                Ok(Request::Decisions { tenant, min_epoch })
            }
            FrameType::Flush => {
                r.finish("FLUSH")?;
                Ok(Request::Flush)
            }
            FrameType::Stats => {
                let min_epoch = if r.at_end() {
                    None
                } else {
                    Some(r.u64("min_epoch")?)
                };
                r.finish("STATS")?;
                Ok(Request::Stats { min_epoch })
            }
            FrameType::Ping => {
                r.finish("PING")?;
                Ok(Request::Ping)
            }
            FrameType::Shutdown => {
                r.finish("SHUTDOWN")?;
                Ok(Request::Shutdown)
            }
            FrameType::Metrics => {
                r.finish("METRICS")?;
                Ok(Request::Metrics)
            }
            FrameType::Subscribe => {
                let shard = r.u32("shard")?;
                let from_epoch = r.u64("from_epoch")?;
                r.finish("SUBSCRIBE")?;
                Ok(Request::Subscribe { shard, from_epoch })
            }
            FrameType::EpochAck => {
                let shard = r.u32("shard")?;
                let epoch = r.u64("epoch")?;
                r.finish("EPOCH_ACK")?;
                Ok(Request::EpochAck { shard, epoch })
            }
            other => Err(FrameError::BadPayload(format!(
                "frame type {other:?} is not a request"
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------

impl Response {
    /// Encode the response as a frame.
    pub fn to_frame(&self) -> Frame {
        match self {
            Response::HelloOk { version } => Frame::new(FrameType::HelloOk, vec![*version]),
            Response::IngestOk { seq } => {
                Frame::new(FrameType::IngestOk, seq.to_le_bytes().to_vec())
            }
            Response::ScoresOk { scores } => {
                let mut payload = (scores.len() as u32).to_le_bytes().to_vec();
                for s in scores {
                    payload.extend_from_slice(&s.to_bits().to_le_bytes());
                }
                Frame::new(FrameType::ScoresOk, payload)
            }
            Response::DecisionsOk { decisions } => {
                let mut payload = (decisions.len() as u32).to_le_bytes().to_vec();
                payload.extend(decisions.iter().map(|&d| d as u8));
                Frame::new(FrameType::DecisionsOk, payload)
            }
            Response::FlushOk => Frame::new(FrameType::FlushOk, Vec::new()),
            Response::StatsOk { stats } => {
                let mut payload = Vec::new();
                payload.extend_from_slice(&stats.conn_frames.to_le_bytes());
                payload.extend_from_slice(&stats.conn_batches.to_le_bytes());
                payload.extend_from_slice(&stats.conn_events.to_le_bytes());
                payload.extend_from_slice(&(stats.shards.len() as u32).to_le_bytes());
                for s in &stats.shards {
                    payload.extend_from_slice(&s.shard.to_le_bytes());
                    payload.extend_from_slice(&s.tenants.to_le_bytes());
                    payload.extend_from_slice(&s.processed_messages.to_le_bytes());
                    payload.extend_from_slice(&s.ingested_events.to_le_bytes());
                    payload.extend_from_slice(&s.ingest_errors.to_le_bytes());
                    payload.extend_from_slice(&s.queue_depth.to_le_bytes());
                    payload.push(s.poisoned as u8);
                }
                Frame::new(FrameType::StatsOk, payload)
            }
            Response::Pong => Frame::new(FrameType::Pong, Vec::new()),
            Response::ShutdownOk => Frame::new(FrameType::ShutdownOk, Vec::new()),
            Response::MetricsOk { metrics } => {
                let mut payload = (metrics.len() as u32).to_le_bytes().to_vec();
                for m in metrics {
                    encode_metric(&mut payload, m);
                }
                Frame::new(FrameType::MetricsOk, payload)
            }
            Response::SubscribeOk { start } => {
                let payload = match start {
                    WireSubscriptionStart::Resume => vec![START_RESUME],
                    WireSubscriptionStart::Snapshot {
                        epoch,
                        threshold,
                        dataset,
                    } => {
                        let mut p = vec![START_SNAPSHOT];
                        p.extend_from_slice(&epoch.to_le_bytes());
                        p.extend_from_slice(&threshold.to_bits().to_le_bytes());
                        p.extend_from_slice(dataset.as_bytes());
                        p
                    }
                };
                Frame::new(FrameType::SubscribeOk, payload)
            }
            Response::Batch { epoch, text } => {
                let mut payload = epoch.to_le_bytes().to_vec();
                payload.extend_from_slice(text.as_bytes());
                Frame::new(FrameType::Batch, payload)
            }
            Response::Error { code, message } => {
                let mut payload = (*code as u16).to_le_bytes().to_vec();
                payload.extend_from_slice(message.as_bytes());
                Frame::new(FrameType::Error, payload)
            }
        }
    }

    /// Decode a response frame. Request-typed frames are rejected.
    pub fn from_frame(frame: &Frame) -> Result<Response, FrameError> {
        let mut r = Reader::new(&frame.payload);
        match frame.kind {
            FrameType::HelloOk => {
                let version = r.u8("version")?;
                r.finish("HELLO_OK")?;
                Ok(Response::HelloOk { version })
            }
            FrameType::IngestOk => {
                let seq = r.u64("seq")?;
                r.finish("INGEST_OK")?;
                Ok(Response::IngestOk { seq })
            }
            FrameType::ScoresOk => {
                let n = r.u32("score count")? as usize;
                let mut scores = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    scores.push(f64::from_bits(r.u64("score")?));
                }
                r.finish("SCORES_OK")?;
                Ok(Response::ScoresOk { scores })
            }
            FrameType::DecisionsOk => {
                let n = r.u32("decision count")? as usize;
                let bytes = r.take(n, "decisions")?;
                let mut decisions = Vec::with_capacity(n);
                for &b in bytes {
                    match b {
                        0 => decisions.push(false),
                        1 => decisions.push(true),
                        other => {
                            return Err(FrameError::BadPayload(format!(
                                "decision byte must be 0 or 1, got {other}"
                            )))
                        }
                    }
                }
                r.finish("DECISIONS_OK")?;
                Ok(Response::DecisionsOk { decisions })
            }
            FrameType::FlushOk => {
                r.finish("FLUSH_OK")?;
                Ok(Response::FlushOk)
            }
            FrameType::StatsOk => {
                let conn_frames = r.u64("conn_frames")?;
                let conn_batches = r.u64("conn_batches")?;
                let conn_events = r.u64("conn_events")?;
                let n = r.u32("shard count")? as usize;
                let mut shards = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    shards.push(WireShardStats {
                        shard: r.u32("shard")?,
                        tenants: r.u32("tenants")?,
                        processed_messages: r.u64("processed_messages")?,
                        ingested_events: r.u64("ingested_events")?,
                        ingest_errors: r.u64("ingest_errors")?,
                        queue_depth: r.u32("queue_depth")?,
                        poisoned: match r.u8("poisoned")? {
                            0 => false,
                            1 => true,
                            other => {
                                return Err(FrameError::BadPayload(format!(
                                    "poisoned byte must be 0 or 1, got {other}"
                                )))
                            }
                        },
                    });
                }
                r.finish("STATS_OK")?;
                Ok(Response::StatsOk {
                    stats: WireStats {
                        conn_frames,
                        conn_batches,
                        conn_events,
                        shards,
                    },
                })
            }
            FrameType::Pong => {
                r.finish("PONG")?;
                Ok(Response::Pong)
            }
            FrameType::ShutdownOk => {
                r.finish("SHUTDOWN_OK")?;
                Ok(Response::ShutdownOk)
            }
            FrameType::MetricsOk => {
                let metrics = decode_metrics(&mut r)?;
                r.finish("METRICS_OK")?;
                Ok(Response::MetricsOk { metrics })
            }
            FrameType::SubscribeOk => {
                let tag = r.u8("subscription start tag")?;
                let start = match tag {
                    START_RESUME => {
                        r.finish("SUBSCRIBE_OK")?;
                        WireSubscriptionStart::Resume
                    }
                    START_SNAPSHOT => {
                        let epoch = r.u64("snapshot epoch")?;
                        let threshold = f64::from_bits(r.u64("snapshot threshold")?);
                        let dataset = utf8(r.rest(), "snapshot dataset")?.to_string();
                        WireSubscriptionStart::Snapshot {
                            epoch,
                            threshold,
                            dataset,
                        }
                    }
                    other => {
                        return Err(FrameError::BadPayload(format!(
                            "subscription start tag must be 0 or 1, got {other}"
                        )))
                    }
                };
                Ok(Response::SubscribeOk { start })
            }
            FrameType::Batch => {
                let epoch = r.u64("batch epoch")?;
                let text = utf8(r.rest(), "batch event text")?.to_string();
                Ok(Response::Batch { epoch, text })
            }
            FrameType::Error => {
                let raw = r.u16("error code")?;
                let code = ErrorCode::from_code(raw)
                    .ok_or_else(|| FrameError::BadPayload(format!("unknown error code {raw}")))?;
                let message = utf8(r.rest(), "error message")?.to_string();
                Ok(Response::Error { code, message })
            }
            other => Err(FrameError::BadPayload(format!(
                "frame type {other:?} is not a response"
            ))),
        }
    }
}

/// Wire tags for [`WireSubscriptionStart`] in a `SUBSCRIBE_OK` payload.
const START_RESUME: u8 = 0;
const START_SNAPSHOT: u8 = 1;

// ---------------------------------------------------------------------
// METRICS_OK entry codec
// ---------------------------------------------------------------------

/// Wire tags for metric entry kinds. Unknown tags are skipped by
/// decoders, which is what lets the payload grow without a protocol
/// rev.
const TAG_COUNTER: u8 = 0;
const TAG_GAUGE: u8 = 1;
const TAG_HISTOGRAM: u8 = 2;

fn encode_metric(payload: &mut Vec<u8>, m: &WireMetric) {
    // Entry body first, so the length prefix can be computed once.
    let mut body = (m.name.len() as u16).to_le_bytes().to_vec();
    body.extend_from_slice(m.name.as_bytes());
    match &m.value {
        WireMetricValue::Counter(v) => {
            body.push(TAG_COUNTER);
            body.extend_from_slice(&v.to_le_bytes());
        }
        WireMetricValue::Gauge(v) => {
            body.push(TAG_GAUGE);
            body.extend_from_slice(&v.to_le_bytes());
        }
        WireMetricValue::Histogram(h) => {
            body.push(TAG_HISTOGRAM);
            body.extend_from_slice(&h.count.to_le_bytes());
            body.extend_from_slice(&h.sum.to_le_bytes());
            body.extend_from_slice(&h.max.to_le_bytes());
            body.extend_from_slice(&(h.buckets.len() as u16).to_le_bytes());
            for b in &h.buckets {
                body.extend_from_slice(&b.to_le_bytes());
            }
        }
    }
    payload.extend_from_slice(&(body.len() as u32).to_le_bytes());
    payload.extend_from_slice(&body);
}

fn decode_metrics(r: &mut Reader<'_>) -> Result<Vec<WireMetric>, FrameError> {
    let n = r.u32("metric count")? as usize;
    let mut metrics = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let entry_len = r.u32("metric entry length")? as usize;
        let entry = r.take(entry_len, "metric entry")?;
        let mut e = Reader::new(entry);
        let name_len = e.u16("metric name length")? as usize;
        let name = utf8(e.take(name_len, "metric name")?, "metric name")?.to_string();
        let tag = e.u8("metric tag")?;
        // Trailing bytes inside an entry are deliberately tolerated
        // (no `finish()` here): a newer server may append fields to a
        // known kind, and `entry_len` already told us where it ends.
        let value = match tag {
            TAG_COUNTER => WireMetricValue::Counter(e.u64("counter value")?),
            TAG_GAUGE => WireMetricValue::Gauge(e.u64("gauge value")? as i64),
            TAG_HISTOGRAM => {
                let count = e.u64("histogram count")?;
                let sum = e.u64("histogram sum")?;
                let max = e.u64("histogram max")?;
                let nb = e.u16("bucket count")? as usize;
                let mut buckets = Vec::with_capacity(nb.min(1 << 10));
                for _ in 0..nb {
                    buckets.push(e.u64("bucket")?);
                }
                WireMetricValue::Histogram(WireHistogram {
                    count,
                    sum,
                    max,
                    buckets,
                })
            }
            // Unknown kind from a newer server: skip the whole entry.
            _ => continue,
        };
        metrics.push(WireMetric { name, value });
    }
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_core::dataset::SourceId;
    use corrfuse_core::TripleId;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello {
                min_version: 1,
                max_version: 1,
                credential: None,
            },
            Request::Hello {
                min_version: 1,
                max_version: 1,
                credential: Some("tenant-0-writer".to_string()),
            },
            Request::Hello {
                min_version: 1,
                max_version: 3,
                credential: Some(String::new()),
            },
            Request::Ingest {
                tenant: TenantId(7),
                events: vec![
                    Event::add_source("remote\tsource"),
                    Event::add_triple("x", "p", "1"),
                    Event::claim(SourceId(0), TripleId(0)),
                    Event::label(TripleId(0), true),
                ],
            },
            Request::Ingest {
                tenant: TenantId(0),
                events: Vec::new(),
            },
            Request::Scores {
                tenant: TenantId(3),
                min_epoch: None,
            },
            Request::Scores {
                tenant: TenantId(3),
                min_epoch: Some(17),
            },
            Request::Decisions {
                tenant: TenantId(3),
                min_epoch: None,
            },
            Request::Decisions {
                tenant: TenantId(3),
                min_epoch: Some(u64::MAX),
            },
            Request::Flush,
            Request::Stats { min_epoch: None },
            Request::Stats { min_epoch: Some(9) },
            Request::Ping,
            Request::Shutdown,
            Request::Metrics,
            Request::Subscribe {
                shard: 2,
                from_epoch: 0,
            },
            Request::Subscribe {
                shard: 0,
                from_epoch: 1234,
            },
            Request::EpochAck {
                shard: 2,
                epoch: 1235,
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::HelloOk { version: 1 },
            Response::IngestOk { seq: 42 },
            Response::ScoresOk {
                scores: vec![0.25, f64::MIN_POSITIVE, 1.0],
            },
            Response::DecisionsOk {
                decisions: vec![true, false, true],
            },
            Response::FlushOk,
            Response::StatsOk {
                stats: WireStats {
                    conn_frames: 10,
                    conn_batches: 4,
                    conn_events: 99,
                    shards: vec![
                        WireShardStats {
                            shard: 0,
                            tenants: 2,
                            processed_messages: 7,
                            ingested_events: 70,
                            ingest_errors: 1,
                            queue_depth: 3,
                            poisoned: false,
                        },
                        WireShardStats {
                            shard: 1,
                            poisoned: true,
                            ..WireShardStats::default()
                        },
                    ],
                },
            },
            Response::Pong,
            Response::ShutdownOk,
            Response::MetricsOk {
                metrics: Vec::new(),
            },
            Response::MetricsOk {
                metrics: vec![
                    WireMetric {
                        name: "serve_joint_delta_rows".to_string(),
                        value: WireMetricValue::Counter(1234),
                    },
                    WireMetric {
                        name: "serve_queue_depth_0".to_string(),
                        value: WireMetricValue::Gauge(-3),
                    },
                    WireMetric {
                        name: "stream_ingest_ns".to_string(),
                        value: WireMetricValue::Histogram(WireHistogram {
                            count: 5,
                            sum: 900,
                            max: 400,
                            buckets: vec![0, 1, 0, 2, 2],
                        }),
                    },
                ],
            },
            Response::SubscribeOk {
                start: WireSubscriptionStart::Resume,
            },
            Response::SubscribeOk {
                start: WireSubscriptionStart::Snapshot {
                    epoch: 41,
                    threshold: 0.5,
                    dataset: "#corrfuse v1\nS\tA\n".to_string(),
                },
            },
            Response::Batch {
                epoch: 42,
                text: "+C\t1\t2\n+B\n".to_string(),
            },
            Response::Error {
                code: ErrorCode::Busy,
                message: "shard 2 queue full".to_string(),
            },
            Response::Error {
                code: ErrorCode::Stale,
                message: "shard 0 is stale: at epoch 3, read demanded 5".to_string(),
            },
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for req in sample_requests() {
            let frame = req.to_frame();
            // Through the byte level too, not just the frame structs.
            let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
            assert_eq!(Request::from_frame(&decoded).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in sample_responses() {
            let frame = resp.to_frame();
            let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
            assert_eq!(Response::from_frame(&decoded).unwrap(), resp);
        }
    }

    #[test]
    fn scores_travel_bitwise() {
        let scores = vec![0.1 + 0.2, f64::EPSILON, 1.0 - 1e-16];
        let resp = Response::ScoresOk {
            scores: scores.clone(),
        };
        match Response::from_frame(&resp.to_frame()).unwrap() {
            Response::ScoresOk { scores: back } => {
                for (a, b) in back.iter().zip(&scores) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ingest_payload_is_journal_codec_text() {
        let req = Request::Ingest {
            tenant: TenantId(5),
            events: vec![Event::claim(SourceId(1), TripleId(2))],
        };
        let frame = req.to_frame();
        let text = std::str::from_utf8(&frame.payload[4..]).unwrap();
        assert_eq!(text, "+C\t1\t2\n+B\n");
    }

    #[test]
    fn batch_payload_is_epoch_then_journal_codec_text() {
        // The BATCH payload tail is the same codec text as INGEST's, so
        // a follower's apply path and the server's ingest path share one
        // parser.
        let resp = Response::Batch {
            epoch: 7,
            text: "+C\t1\t2\n+B\n".to_string(),
        };
        let frame = resp.to_frame();
        assert_eq!(&frame.payload[..8], &7u64.to_le_bytes());
        assert_eq!(
            std::str::from_utf8(&frame.payload[8..]).unwrap(),
            "+C\t1\t2\n+B\n"
        );
    }

    #[test]
    fn min_epoch_is_an_optional_trailing_field() {
        // Absent: the pre-replication 4-byte SCORES payload still
        // decodes (wire compatibility with older clients).
        let legacy = Frame::new(FrameType::Scores, 3u32.to_le_bytes().to_vec());
        assert_eq!(
            Request::from_frame(&legacy).unwrap(),
            Request::Scores {
                tenant: TenantId(3),
                min_epoch: None,
            }
        );
        // Present: 4 + 8 bytes.
        let req = Request::Scores {
            tenant: TenantId(3),
            min_epoch: Some(11),
        };
        assert_eq!(req.to_frame().payload.len(), 12);
        // STATS: empty or 8 bytes.
        assert_eq!(
            Request::Stats { min_epoch: None }.to_frame().payload.len(),
            0
        );
        assert_eq!(
            Request::from_frame(&Frame::new(FrameType::Stats, Vec::new())).unwrap(),
            Request::Stats { min_epoch: None }
        );
    }

    #[test]
    fn cross_kind_decoding_is_rejected() {
        let req_frame = Request::Ping.to_frame();
        assert!(Response::from_frame(&req_frame).is_err());
        let resp_frame = Response::Pong.to_frame();
        assert!(Request::from_frame(&resp_frame).is_err());
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        // Truncated tenant id.
        let bad = Frame::new(FrameType::Scores, vec![1, 2]);
        assert!(Request::from_frame(&bad).is_err());
        // Truncated min_epoch (5 bytes after the tenant id).
        let bad = Frame::new(FrameType::Scores, vec![0; 4 + 5]);
        assert!(Request::from_frame(&bad).is_err());
        // Truncated STATS min_epoch.
        let bad = Frame::new(FrameType::Stats, vec![0; 3]);
        assert!(Request::from_frame(&bad).is_err());
        // Truncated SUBSCRIBE and trailing garbage after EPOCH_ACK.
        let bad = Frame::new(FrameType::Subscribe, vec![0; 11]);
        assert!(Request::from_frame(&bad).is_err());
        let bad = Frame::new(FrameType::EpochAck, vec![0; 13]);
        assert!(Request::from_frame(&bad).is_err());
        // Unknown subscription start tag, and trailing bytes on Resume.
        let bad = Frame::new(FrameType::SubscribeOk, vec![7]);
        assert!(Response::from_frame(&bad).is_err());
        let bad = Frame::new(FrameType::SubscribeOk, vec![0, 1]);
        assert!(Response::from_frame(&bad).is_err());
        // Non-UTF-8 batch text.
        let mut payload = 5u64.to_le_bytes().to_vec();
        payload.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Response::from_frame(&Frame::new(FrameType::Batch, payload)).is_err());
        // Trailing garbage.
        let bad = Frame::new(FrameType::Flush, vec![0]);
        assert!(Request::from_frame(&bad).is_err());
        // Ingest without the +B terminator.
        let mut payload = 3u32.to_le_bytes().to_vec();
        payload.extend_from_slice(b"+C\t0\t0\n");
        assert!(Request::from_frame(&Frame::new(FrameType::Ingest, payload)).is_err());
        // Ingest with two batches.
        let mut payload = 3u32.to_le_bytes().to_vec();
        payload.extend_from_slice(b"+B\n+B\n");
        assert!(Request::from_frame(&Frame::new(FrameType::Ingest, payload)).is_err());
        // Non-UTF-8 ingest text.
        let mut payload = 3u32.to_le_bytes().to_vec();
        payload.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Request::from_frame(&Frame::new(FrameType::Ingest, payload)).is_err());
        // Unknown error code.
        let mut payload = 999u16.to_le_bytes().to_vec();
        payload.extend_from_slice(b"boom");
        assert!(Response::from_frame(&Frame::new(FrameType::Error, payload)).is_err());
        // Bad decision byte.
        let bad = Frame::new(FrameType::DecisionsOk, vec![1, 0, 0, 0, 7]);
        assert!(Response::from_frame(&bad).is_err());
    }

    /// Hand-encode one METRICS_OK entry (the layout under test).
    fn raw_entry(name: &str, tag: u8, body: &[u8]) -> Vec<u8> {
        let mut entry = (name.len() as u16).to_le_bytes().to_vec();
        entry.extend_from_slice(name.as_bytes());
        entry.push(tag);
        entry.extend_from_slice(body);
        let mut out = (entry.len() as u32).to_le_bytes().to_vec();
        out.extend_from_slice(&entry);
        out
    }

    #[test]
    fn metrics_decoder_skips_unknown_tags() {
        // A "newer server" payload: known counter, unknown tag 9 with an
        // opaque body, known gauge. The decoder must keep both known
        // entries and drop the middle one without erroring.
        let mut payload = 3u32.to_le_bytes().to_vec();
        payload.extend_from_slice(&raw_entry("a", 0, &7u64.to_le_bytes()));
        payload.extend_from_slice(&raw_entry("mystery", 9, &[1, 2, 3, 4, 5]));
        payload.extend_from_slice(&raw_entry("b", 1, &(-2i64).to_le_bytes()));
        let frame = Frame::new(FrameType::MetricsOk, payload);
        match Response::from_frame(&frame).unwrap() {
            Response::MetricsOk { metrics } => {
                assert_eq!(
                    metrics,
                    vec![
                        WireMetric {
                            name: "a".to_string(),
                            value: WireMetricValue::Counter(7),
                        },
                        WireMetric {
                            name: "b".to_string(),
                            value: WireMetricValue::Gauge(-2),
                        },
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn metrics_decoder_tolerates_trailing_entry_bytes() {
        // A known counter whose entry carries extra bytes after the
        // value — a newer server extending the kind. entry_len bounds
        // the skip, so decoding still succeeds.
        let mut body = 7u64.to_le_bytes().to_vec();
        body.extend_from_slice(b"future-field");
        let mut payload = 1u32.to_le_bytes().to_vec();
        payload.extend_from_slice(&raw_entry("a", 0, &body));
        let frame = Frame::new(FrameType::MetricsOk, payload);
        match Response::from_frame(&frame).unwrap() {
            Response::MetricsOk { metrics } => {
                assert_eq!(metrics[0].value, WireMetricValue::Counter(7));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn metrics_decoder_rejects_truncated_entries() {
        // entry_len pointing past the payload end is a typed error.
        let mut payload = 1u32.to_le_bytes().to_vec();
        payload.extend_from_slice(&99u32.to_le_bytes());
        payload.push(0);
        let frame = Frame::new(FrameType::MetricsOk, payload);
        assert!(Response::from_frame(&frame).is_err());
    }

    #[test]
    fn wire_histogram_converts_to_quantile_snapshot() {
        use corrfuse_obs::Histogram;
        let h = Histogram::new();
        for v in [3, 3, 900, 17, 0] {
            h.record(v);
        }
        let snap = h.snapshot();
        let wire = &WireMetric::from_samples(&[corrfuse_obs::MetricSample {
            name: "x".to_string(),
            value: corrfuse_obs::MetricValue::Histogram(Box::new(snap.clone())),
        }])[0];
        match &wire.value {
            WireMetricValue::Histogram(wh) => {
                // Round-trip through the wire shape preserves quantiles.
                let back = wh.to_snapshot();
                assert_eq!(back, snap);
                assert_eq!(back.p50(), snap.p50());
                assert_eq!(back.max, 900);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_codes_roundtrip_and_classify() {
        use corrfuse_serve::ServeError;
        for code in [
            ErrorCode::Malformed,
            ErrorCode::UnsupportedVersion,
            ErrorCode::UnknownTenant,
            ErrorCode::Busy,
            ErrorCode::ShardPoisoned,
            ErrorCode::ShuttingDown,
            ErrorCode::Forbidden,
            ErrorCode::Internal,
            ErrorCode::Stale,
            ErrorCode::Migrating,
        ] {
            assert_eq!(ErrorCode::from_code(code as u16), Some(code));
            // Busy clears as queues drain; Stale clears as the replica
            // catches up; Migrating clears as the cut-over window
            // closes. Everything else is deterministic.
            assert_eq!(
                code.is_retryable(),
                matches!(
                    code,
                    ErrorCode::Busy | ErrorCode::Stale | ErrorCode::Migrating
                )
            );
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(
            crate::error::code_of(&ServeError::Backpressure { shard: 0, depth: 1 }),
            ErrorCode::Busy
        );
        assert_eq!(
            crate::error::code_of(&ServeError::ShardPoisoned {
                shard: 0,
                reason: "x".into()
            }),
            ErrorCode::ShardPoisoned
        );
        assert_eq!(
            crate::error::code_of(&ServeError::UnknownTenant(TenantId(1))),
            ErrorCode::UnknownTenant
        );
        assert_eq!(
            crate::error::code_of(&ServeError::ShuttingDown),
            ErrorCode::ShuttingDown
        );
        assert_eq!(
            crate::error::code_of(&ServeError::Stale {
                shard: 0,
                epoch: 3,
                min_epoch: 5
            }),
            ErrorCode::Stale
        );
        assert_eq!(
            crate::error::code_of(&ServeError::TenantMigrating {
                tenant: TenantId(3)
            }),
            ErrorCode::Migrating
        );
        assert_eq!(
            crate::error::code_of(&ServeError::InvalidConfig("x")),
            ErrorCode::Internal
        );
    }
}
