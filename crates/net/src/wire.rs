//! The message layer: typed [`Request`]s and [`Response`]s over
//! [`Frame`]s.
//!
//! Every payload layout here is specified byte-for-byte in
//! `docs/PROTOCOL.md`. Integers are little-endian. The `INGEST` payload
//! embeds the journal event codec ([`corrfuse_stream::codec`]) as UTF-8
//! text — exactly one `+B`-terminated batch — which is what makes a
//! captured wire stream replayable as a journal: concatenate `INGEST`
//! payloads after a `#corrfuse-journal v1` snapshot prefix and the
//! result parses as a journal file.

use corrfuse_serve::{RouterStats, TenantId};
use corrfuse_stream::codec;
use corrfuse_stream::Event;

use crate::error::ErrorCode;
use crate::frame::{Frame, FrameError, FrameType};

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version negotiation; MUST be the first request on a connection.
    /// Carries the inclusive range of protocol versions the client
    /// speaks.
    Hello {
        /// Lowest version the client accepts.
        min_version: u8,
        /// Highest version the client accepts.
        max_version: u8,
    },
    /// One event batch for one tenant.
    Ingest {
        /// The tenant the events belong to (tenant-local ids inside).
        tenant: TenantId,
        /// The batch, in application order.
        events: Vec<Event>,
    },
    /// Posterior scores of one tenant, in tenant-local `TripleId` order.
    Scores {
        /// The queried tenant.
        tenant: TenantId,
    },
    /// Accept/reject decisions of one tenant.
    Decisions {
        /// The queried tenant.
        tenant: TenantId,
    },
    /// Read-your-writes barrier over the whole router.
    Flush,
    /// Per-connection and per-shard statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the server to stop accepting and shut down (honoured only
    /// when the server enables remote shutdown).
    Shutdown,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Hello accepted; `version` is the negotiated protocol version
    /// (both sides speak it for the rest of the connection).
    HelloOk {
        /// The negotiated version.
        version: u8,
    },
    /// Ingest batch accepted (enqueued; not necessarily applied yet —
    /// use `Flush` for read-your-writes).
    IngestOk {
        /// 1-based count of batches this connection has had accepted.
        seq: u64,
    },
    /// Scores reply.
    ScoresOk {
        /// Posteriors in tenant-local `TripleId` order (f64 bit
        /// patterns travel verbatim, so remote reads are bitwise equal
        /// to local ones).
        scores: Vec<f64>,
    },
    /// Decisions reply.
    DecisionsOk {
        /// Accept/reject per tenant-local triple.
        decisions: Vec<bool>,
    },
    /// Barrier reached: everything accepted before the `Flush` is
    /// applied.
    FlushOk,
    /// Statistics reply.
    StatsOk {
        /// Connection + shard counters.
        stats: WireStats,
    },
    /// Liveness reply.
    Pong,
    /// The server accepted the shutdown request and will stop.
    ShutdownOk,
    /// Typed failure; see [`ErrorCode`] for retryability.
    Error {
        /// The protocol error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Statistics carried by [`Response::StatsOk`]: the serving connection's
/// own counters plus a per-shard view of the router.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Frames this connection has received (requests, post-handshake).
    pub conn_frames: u64,
    /// Ingest batches this connection has had accepted.
    pub conn_batches: u64,
    /// Events across those batches.
    pub conn_events: u64,
    /// Per-shard router counters, in shard order.
    pub shards: Vec<WireShardStats>,
}

/// One shard's counters as surfaced over the wire (a stable subset of
/// `corrfuse_serve::ShardStats`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireShardStats {
    /// Shard index.
    pub shard: u32,
    /// Tenants hosted.
    pub tenants: u32,
    /// Messages applied by the shard worker.
    pub processed_messages: u64,
    /// Events ingested into the shard session.
    pub ingested_events: u64,
    /// Messages dropped because translation or ingest failed.
    pub ingest_errors: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u32,
    /// Whether the shard is poisoned (fatal; see
    /// [`ErrorCode::ShardPoisoned`]).
    pub poisoned: bool,
}

impl WireStats {
    /// Build the shard view from live router stats.
    pub fn from_router(router: &RouterStats) -> WireStats {
        WireStats {
            shards: router
                .shards
                .iter()
                .map(|s| WireShardStats {
                    shard: s.shard as u32,
                    tenants: s.tenants as u32,
                    processed_messages: s.processed_messages,
                    ingested_events: s.ingested_events,
                    ingest_errors: s.ingest_errors,
                    queue_depth: s.queue_depth as u32,
                    poisoned: s.poisoned,
                })
                .collect(),
            ..WireStats::default()
        }
    }
}

// ---------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(FrameError::BadPayload(format!(
                "payload ends inside {what} ({} of {} bytes left)",
                self.buf.len() - self.pos,
                n
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self, what: &str) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn rest(self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    fn finish(self, what: &str) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::BadPayload(format!(
                "{} trailing bytes after {what}",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn utf8<'a>(bytes: &'a [u8], what: &str) -> Result<&'a str, FrameError> {
    std::str::from_utf8(bytes)
        .map_err(|e| FrameError::BadPayload(format!("{what} is not UTF-8: {e}")))
}

// ---------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------

impl Request {
    /// Build an `INGEST` frame from a borrowed batch (no event clone —
    /// the hot path for pipelining clients that keep the encoded bytes
    /// for resend).
    pub fn ingest_frame(tenant: TenantId, events: &[Event]) -> Frame {
        let mut payload = tenant.0.to_le_bytes().to_vec();
        payload.extend_from_slice(codec::encode_batch(events).as_bytes());
        Frame::new(FrameType::Ingest, payload)
    }

    /// Encode the request as a frame.
    pub fn to_frame(&self) -> Frame {
        match self {
            Request::Hello {
                min_version,
                max_version,
            } => Frame::new(FrameType::Hello, vec![*min_version, *max_version]),
            Request::Ingest { tenant, events } => Request::ingest_frame(*tenant, events),
            Request::Scores { tenant } => {
                Frame::new(FrameType::Scores, tenant.0.to_le_bytes().to_vec())
            }
            Request::Decisions { tenant } => {
                Frame::new(FrameType::Decisions, tenant.0.to_le_bytes().to_vec())
            }
            Request::Flush => Frame::new(FrameType::Flush, Vec::new()),
            Request::Stats => Frame::new(FrameType::Stats, Vec::new()),
            Request::Ping => Frame::new(FrameType::Ping, Vec::new()),
            Request::Shutdown => Frame::new(FrameType::Shutdown, Vec::new()),
        }
    }

    /// Decode a request frame. Response-typed frames are rejected.
    pub fn from_frame(frame: &Frame) -> Result<Request, FrameError> {
        let mut r = Reader::new(&frame.payload);
        match frame.kind {
            FrameType::Hello => {
                let min_version = r.u8("min_version")?;
                let max_version = r.u8("max_version")?;
                r.finish("HELLO")?;
                Ok(Request::Hello {
                    min_version,
                    max_version,
                })
            }
            FrameType::Ingest => {
                let tenant = TenantId(r.u32("tenant")?);
                let text = utf8(r.rest(), "INGEST event text")?;
                let parsed = codec::parse_batches(text)
                    .map_err(|e| FrameError::BadPayload(e.to_string()))?;
                if parsed.open_tail {
                    return Err(FrameError::BadPayload(
                        "INGEST batch is missing its +B terminator".to_string(),
                    ));
                }
                match <[Vec<Event>; 1]>::try_from(parsed.batches) {
                    Ok([events]) => Ok(Request::Ingest { tenant, events }),
                    Err(batches) => Err(FrameError::BadPayload(format!(
                        "INGEST carries {} batches, expected exactly 1",
                        batches.len()
                    ))),
                }
            }
            FrameType::Scores => {
                let tenant = TenantId(r.u32("tenant")?);
                r.finish("SCORES")?;
                Ok(Request::Scores { tenant })
            }
            FrameType::Decisions => {
                let tenant = TenantId(r.u32("tenant")?);
                r.finish("DECISIONS")?;
                Ok(Request::Decisions { tenant })
            }
            FrameType::Flush => {
                r.finish("FLUSH")?;
                Ok(Request::Flush)
            }
            FrameType::Stats => {
                r.finish("STATS")?;
                Ok(Request::Stats)
            }
            FrameType::Ping => {
                r.finish("PING")?;
                Ok(Request::Ping)
            }
            FrameType::Shutdown => {
                r.finish("SHUTDOWN")?;
                Ok(Request::Shutdown)
            }
            other => Err(FrameError::BadPayload(format!(
                "frame type {other:?} is not a request"
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------

impl Response {
    /// Encode the response as a frame.
    pub fn to_frame(&self) -> Frame {
        match self {
            Response::HelloOk { version } => Frame::new(FrameType::HelloOk, vec![*version]),
            Response::IngestOk { seq } => {
                Frame::new(FrameType::IngestOk, seq.to_le_bytes().to_vec())
            }
            Response::ScoresOk { scores } => {
                let mut payload = (scores.len() as u32).to_le_bytes().to_vec();
                for s in scores {
                    payload.extend_from_slice(&s.to_bits().to_le_bytes());
                }
                Frame::new(FrameType::ScoresOk, payload)
            }
            Response::DecisionsOk { decisions } => {
                let mut payload = (decisions.len() as u32).to_le_bytes().to_vec();
                payload.extend(decisions.iter().map(|&d| d as u8));
                Frame::new(FrameType::DecisionsOk, payload)
            }
            Response::FlushOk => Frame::new(FrameType::FlushOk, Vec::new()),
            Response::StatsOk { stats } => {
                let mut payload = Vec::new();
                payload.extend_from_slice(&stats.conn_frames.to_le_bytes());
                payload.extend_from_slice(&stats.conn_batches.to_le_bytes());
                payload.extend_from_slice(&stats.conn_events.to_le_bytes());
                payload.extend_from_slice(&(stats.shards.len() as u32).to_le_bytes());
                for s in &stats.shards {
                    payload.extend_from_slice(&s.shard.to_le_bytes());
                    payload.extend_from_slice(&s.tenants.to_le_bytes());
                    payload.extend_from_slice(&s.processed_messages.to_le_bytes());
                    payload.extend_from_slice(&s.ingested_events.to_le_bytes());
                    payload.extend_from_slice(&s.ingest_errors.to_le_bytes());
                    payload.extend_from_slice(&s.queue_depth.to_le_bytes());
                    payload.push(s.poisoned as u8);
                }
                Frame::new(FrameType::StatsOk, payload)
            }
            Response::Pong => Frame::new(FrameType::Pong, Vec::new()),
            Response::ShutdownOk => Frame::new(FrameType::ShutdownOk, Vec::new()),
            Response::Error { code, message } => {
                let mut payload = (*code as u16).to_le_bytes().to_vec();
                payload.extend_from_slice(message.as_bytes());
                Frame::new(FrameType::Error, payload)
            }
        }
    }

    /// Decode a response frame. Request-typed frames are rejected.
    pub fn from_frame(frame: &Frame) -> Result<Response, FrameError> {
        let mut r = Reader::new(&frame.payload);
        match frame.kind {
            FrameType::HelloOk => {
                let version = r.u8("version")?;
                r.finish("HELLO_OK")?;
                Ok(Response::HelloOk { version })
            }
            FrameType::IngestOk => {
                let seq = r.u64("seq")?;
                r.finish("INGEST_OK")?;
                Ok(Response::IngestOk { seq })
            }
            FrameType::ScoresOk => {
                let n = r.u32("score count")? as usize;
                let mut scores = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    scores.push(f64::from_bits(r.u64("score")?));
                }
                r.finish("SCORES_OK")?;
                Ok(Response::ScoresOk { scores })
            }
            FrameType::DecisionsOk => {
                let n = r.u32("decision count")? as usize;
                let bytes = r.take(n, "decisions")?;
                let mut decisions = Vec::with_capacity(n);
                for &b in bytes {
                    match b {
                        0 => decisions.push(false),
                        1 => decisions.push(true),
                        other => {
                            return Err(FrameError::BadPayload(format!(
                                "decision byte must be 0 or 1, got {other}"
                            )))
                        }
                    }
                }
                r.finish("DECISIONS_OK")?;
                Ok(Response::DecisionsOk { decisions })
            }
            FrameType::FlushOk => {
                r.finish("FLUSH_OK")?;
                Ok(Response::FlushOk)
            }
            FrameType::StatsOk => {
                let conn_frames = r.u64("conn_frames")?;
                let conn_batches = r.u64("conn_batches")?;
                let conn_events = r.u64("conn_events")?;
                let n = r.u32("shard count")? as usize;
                let mut shards = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    shards.push(WireShardStats {
                        shard: r.u32("shard")?,
                        tenants: r.u32("tenants")?,
                        processed_messages: r.u64("processed_messages")?,
                        ingested_events: r.u64("ingested_events")?,
                        ingest_errors: r.u64("ingest_errors")?,
                        queue_depth: r.u32("queue_depth")?,
                        poisoned: match r.u8("poisoned")? {
                            0 => false,
                            1 => true,
                            other => {
                                return Err(FrameError::BadPayload(format!(
                                    "poisoned byte must be 0 or 1, got {other}"
                                )))
                            }
                        },
                    });
                }
                r.finish("STATS_OK")?;
                Ok(Response::StatsOk {
                    stats: WireStats {
                        conn_frames,
                        conn_batches,
                        conn_events,
                        shards,
                    },
                })
            }
            FrameType::Pong => {
                r.finish("PONG")?;
                Ok(Response::Pong)
            }
            FrameType::ShutdownOk => {
                r.finish("SHUTDOWN_OK")?;
                Ok(Response::ShutdownOk)
            }
            FrameType::Error => {
                let raw = r.u16("error code")?;
                let code = ErrorCode::from_code(raw)
                    .ok_or_else(|| FrameError::BadPayload(format!("unknown error code {raw}")))?;
                let message = utf8(r.rest(), "error message")?.to_string();
                Ok(Response::Error { code, message })
            }
            other => Err(FrameError::BadPayload(format!(
                "frame type {other:?} is not a response"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_core::dataset::SourceId;
    use corrfuse_core::TripleId;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello {
                min_version: 1,
                max_version: 1,
            },
            Request::Ingest {
                tenant: TenantId(7),
                events: vec![
                    Event::add_source("remote\tsource"),
                    Event::add_triple("x", "p", "1"),
                    Event::claim(SourceId(0), TripleId(0)),
                    Event::label(TripleId(0), true),
                ],
            },
            Request::Ingest {
                tenant: TenantId(0),
                events: Vec::new(),
            },
            Request::Scores {
                tenant: TenantId(3),
            },
            Request::Decisions {
                tenant: TenantId(3),
            },
            Request::Flush,
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::HelloOk { version: 1 },
            Response::IngestOk { seq: 42 },
            Response::ScoresOk {
                scores: vec![0.25, f64::MIN_POSITIVE, 1.0],
            },
            Response::DecisionsOk {
                decisions: vec![true, false, true],
            },
            Response::FlushOk,
            Response::StatsOk {
                stats: WireStats {
                    conn_frames: 10,
                    conn_batches: 4,
                    conn_events: 99,
                    shards: vec![
                        WireShardStats {
                            shard: 0,
                            tenants: 2,
                            processed_messages: 7,
                            ingested_events: 70,
                            ingest_errors: 1,
                            queue_depth: 3,
                            poisoned: false,
                        },
                        WireShardStats {
                            shard: 1,
                            poisoned: true,
                            ..WireShardStats::default()
                        },
                    ],
                },
            },
            Response::Pong,
            Response::ShutdownOk,
            Response::Error {
                code: ErrorCode::Busy,
                message: "shard 2 queue full".to_string(),
            },
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for req in sample_requests() {
            let frame = req.to_frame();
            // Through the byte level too, not just the frame structs.
            let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
            assert_eq!(Request::from_frame(&decoded).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in sample_responses() {
            let frame = resp.to_frame();
            let (decoded, _) = Frame::decode(&frame.encode()).unwrap();
            assert_eq!(Response::from_frame(&decoded).unwrap(), resp);
        }
    }

    #[test]
    fn scores_travel_bitwise() {
        let scores = vec![0.1 + 0.2, f64::EPSILON, 1.0 - 1e-16];
        let resp = Response::ScoresOk {
            scores: scores.clone(),
        };
        match Response::from_frame(&resp.to_frame()).unwrap() {
            Response::ScoresOk { scores: back } => {
                for (a, b) in back.iter().zip(&scores) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ingest_payload_is_journal_codec_text() {
        let req = Request::Ingest {
            tenant: TenantId(5),
            events: vec![Event::claim(SourceId(1), TripleId(2))],
        };
        let frame = req.to_frame();
        let text = std::str::from_utf8(&frame.payload[4..]).unwrap();
        assert_eq!(text, "+C\t1\t2\n+B\n");
    }

    #[test]
    fn cross_kind_decoding_is_rejected() {
        let req_frame = Request::Ping.to_frame();
        assert!(Response::from_frame(&req_frame).is_err());
        let resp_frame = Response::Pong.to_frame();
        assert!(Request::from_frame(&resp_frame).is_err());
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        // Truncated tenant id.
        let bad = Frame::new(FrameType::Scores, vec![1, 2]);
        assert!(Request::from_frame(&bad).is_err());
        // Trailing garbage.
        let bad = Frame::new(FrameType::Flush, vec![0]);
        assert!(Request::from_frame(&bad).is_err());
        // Ingest without the +B terminator.
        let mut payload = 3u32.to_le_bytes().to_vec();
        payload.extend_from_slice(b"+C\t0\t0\n");
        assert!(Request::from_frame(&Frame::new(FrameType::Ingest, payload)).is_err());
        // Ingest with two batches.
        let mut payload = 3u32.to_le_bytes().to_vec();
        payload.extend_from_slice(b"+B\n+B\n");
        assert!(Request::from_frame(&Frame::new(FrameType::Ingest, payload)).is_err());
        // Non-UTF-8 ingest text.
        let mut payload = 3u32.to_le_bytes().to_vec();
        payload.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Request::from_frame(&Frame::new(FrameType::Ingest, payload)).is_err());
        // Unknown error code.
        let mut payload = 999u16.to_le_bytes().to_vec();
        payload.extend_from_slice(b"boom");
        assert!(Response::from_frame(&Frame::new(FrameType::Error, payload)).is_err());
        // Bad decision byte.
        let bad = Frame::new(FrameType::DecisionsOk, vec![1, 0, 0, 0, 7]);
        assert!(Response::from_frame(&bad).is_err());
    }

    #[test]
    fn error_codes_roundtrip_and_classify() {
        use corrfuse_serve::ServeError;
        for code in [
            ErrorCode::Malformed,
            ErrorCode::UnsupportedVersion,
            ErrorCode::UnknownTenant,
            ErrorCode::Busy,
            ErrorCode::ShardPoisoned,
            ErrorCode::ShuttingDown,
            ErrorCode::Forbidden,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_code(code as u16), Some(code));
            assert_eq!(code.is_retryable(), code == ErrorCode::Busy);
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(
            crate::error::code_of(&ServeError::Backpressure { shard: 0, depth: 1 }),
            ErrorCode::Busy
        );
        assert_eq!(
            crate::error::code_of(&ServeError::ShardPoisoned {
                shard: 0,
                reason: "x".into()
            }),
            ErrorCode::ShardPoisoned
        );
        assert_eq!(
            crate::error::code_of(&ServeError::UnknownTenant(TenantId(1))),
            ErrorCode::UnknownTenant
        );
        assert_eq!(
            crate::error::code_of(&ServeError::ShuttingDown),
            ErrorCode::ShuttingDown
        );
        assert_eq!(
            crate::error::code_of(&ServeError::InvalidConfig("x")),
            ErrorCode::Internal
        );
    }
}
