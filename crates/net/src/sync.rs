//! A tiny counting semaphore (Mutex + Condvar), bounding concurrent
//! connection-handler threads.
//!
//! Same offline-workspace pattern as `corrfuse_serve::queue`: std has no
//! stable semaphore, so this provides the minimal blocking
//! acquire/release the accept loop needs, with an RAII permit so a
//! panicking handler still frees its slot.

use std::sync::{Arc, Condvar, Mutex};

/// A counting semaphore.
#[derive(Debug)]
pub struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    /// A semaphore with `n` permits (minimum 1).
    pub fn new(n: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(n.max(1)),
            cv: Condvar::new(),
        }
    }

    /// Block until a permit is available and take it. The permit is
    /// returned when the guard drops.
    pub fn acquire(self: &Arc<Self>) -> Permit {
        let mut p = self.permits.lock().expect("semaphore lock");
        while *p == 0 {
            p = self.cv.wait(p).expect("semaphore lock");
        }
        *p -= 1;
        Permit {
            sem: Arc::clone(self),
        }
    }

    /// [`Semaphore::acquire`] bounded by a timeout, so a waiter can
    /// periodically re-check an external stop condition instead of
    /// parking forever (the server's accept loop depends on this: at
    /// stop time every permit may be held by an idle connection).
    pub fn acquire_timeout(self: &Arc<Self>, timeout: std::time::Duration) -> Option<Permit> {
        let deadline = std::time::Instant::now() + timeout;
        let mut p = self.permits.lock().expect("semaphore lock");
        while *p == 0 {
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (p2, _) = self
                .cv
                .wait_timeout(p, deadline - now)
                .expect("semaphore lock");
            p = p2;
        }
        *p -= 1;
        Some(Permit {
            sem: Arc::clone(self),
        })
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        *self.permits.lock().expect("semaphore lock")
    }

    fn release(&self) {
        let mut p = self.permits.lock().expect("semaphore lock");
        *p += 1;
        self.cv.notify_one();
    }
}

/// RAII permit returned by [`Semaphore::acquire`].
#[derive(Debug)]
pub struct Permit {
    sem: Arc<Semaphore>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.sem.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn permits_bound_and_release() {
        let sem = Arc::new(Semaphore::new(2));
        let a = sem.acquire();
        let _b = sem.acquire();
        assert_eq!(sem.available(), 0);
        drop(a);
        assert_eq!(sem.available(), 1);
    }

    #[test]
    fn acquire_blocks_until_release() {
        let sem = Arc::new(Semaphore::new(1));
        let held = sem.acquire();
        let sem2 = Arc::clone(&sem);
        let waiter = std::thread::spawn(move || {
            let _p = sem2.acquire();
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished(), "second acquire must block");
        drop(held);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn zero_permits_clamps_to_one() {
        let sem = Arc::new(Semaphore::new(0));
        let _p = sem.acquire();
        assert_eq!(sem.available(), 0);
    }
}
