//! # corrfuse-net
//!
//! The network front door for correlation-aware fusion: a versioned,
//! length-prefixed binary wire protocol plus a blocking TCP [`Server`]
//! and [`Client`], so producers on other machines can ingest into a
//! [`corrfuse_serve::ShardRouter`] and query tenant scores remotely.
//!
//! ```text
//!  remote producer ──┐
//!  remote producer ──┤  TCP, `corrfuse-net v1` frames
//!  remote producer ──┴──▶ Server (accept semaphore, thread per conn)
//!                             │  Request::Ingest { tenant, events }
//!                             ▼
//!                         ShardRouter ──▶ shard StreamSessions ──▶ journals
//! ```
//!
//! * [`frame`] — the framing layer: magic + version + type + length +
//!   CRC-32, decodable from arbitrary bytes without panicking.
//! * [`wire`] — typed [`wire::Request`]/[`wire::Response`] messages
//!   over frames. The `INGEST` payload is the journal event codec
//!   ([`corrfuse_stream::codec`]) verbatim, so a captured wire stream
//!   is replayable as a journal.
//! * [`session`] — the sans-I/O session layer: a
//!   [`SessionStateMachine`] consuming arbitrary byte chunks and
//!   emitting writes and decoded requests, with no sockets, threads or
//!   clocks, so protocol behaviour is testable byte-at-a-time and
//!   shared verbatim by both server back ends.
//! * [`transport`] — the in-tree readiness transport: a `poll(2)`
//!   [`Poller`] (registration, interest flags, wakeups) plus the
//!   partial-write [`WriteBuf`], so one thread can hold tens of
//!   thousands of idle connections as file descriptors.
//! * [`acl`] — per-tenant access control resolved from the optional
//!   HELLO credential; denials surface as typed `FORBIDDEN` errors.
//! * [`server`] — the server owning the router, with two back ends
//!   over the one session machine: blocking thread-per-connection
//!   (default) and the readiness reactor
//!   ([`ServerConfig::reactor`]). Backpressure surfaces as retryable
//!   `BUSY` protocol errors, shard poisoning as fatal
//!   `SHARD_POISONED`.
//! * [`client`] — connect/retry, pipelined ingest with at-least-once
//!   in-order resend across reconnects, read-your-writes
//!   [`Client::flush`].
//! * [`error`] — [`NetError`] plus the protocol [`ErrorCode`]s.
//!
//! The normative byte-level specification lives in `docs/PROTOCOL.md`;
//! this crate is its reference implementation, and the network layer of
//! the stack described in `docs/ARCHITECTURE.md` (core → stream →
//! serve → **net**). The subsystem extends the workspace trust anchor
//! (stated once there) across the network: events ingested
//! through a real TCP loopback connection — including under mid-stream
//! client disconnect/reconnect — produce scores **bitwise identical**
//! to a from-scratch `Fuser::fit + score_all` on the accumulated
//! dataset (pinned by `tests/net_equivalence.rs` at the workspace
//! root).
//!
//! ## Quick start
//!
//! ```
//! use corrfuse_core::fuser::{FuserConfig, Method};
//! use corrfuse_core::DatasetBuilder;
//! use corrfuse_net::{Client, Server, ServerConfig};
//! use corrfuse_serve::{RouterConfig, ShardRouter, TenantId};
//! use corrfuse_stream::Event;
//!
//! // A one-tenant router behind a loopback server.
//! let mut b = DatasetBuilder::new();
//! let (s, t1) = b.observe_named("A", "x", "p", "1");
//! b.label(t1, true);
//! let t2 = b.triple("y", "p", "2");
//! b.observe(s, t2);
//! b.label(t2, false);
//! let router = ShardRouter::new(
//!     FuserConfig::new(Method::PrecRec),
//!     RouterConfig::new(1),
//!     vec![(TenantId(0), b.build().unwrap())],
//! )
//! .unwrap();
//! let server = Server::bind("127.0.0.1:0", router, ServerConfig::new()).unwrap();
//! let addr = server.local_addr().unwrap();
//! let (handle, join) = corrfuse_net::server::spawn(server).unwrap();
//!
//! // A remote producer streams a claim and reads its own write.
//! let mut client = Client::connect(addr.to_string()).unwrap();
//! client
//!     .ingest(
//!         TenantId(0),
//!         &[
//!             Event::add_triple("z", "p", "3"),
//!             Event::claim(corrfuse_core::SourceId(0), corrfuse_core::TripleId(2)),
//!         ],
//!     )
//!     .unwrap();
//! client.flush().unwrap(); // read-your-writes barrier
//! assert_eq!(client.scores(TenantId(0)).unwrap().len(), 3);
//!
//! handle.stop();
//! join.join().unwrap().unwrap();
//! ```

#![warn(rust_2018_idioms)]
#![deny(missing_docs)]

pub mod acl;
pub mod client;
pub mod crc;
pub mod error;
pub mod frame;
pub mod server;
pub mod session;
pub mod sync;
pub mod transport;
pub mod wire;

pub use acl::{Access, AclTable};
pub use client::{Client, ClientConfig};
pub use error::{ErrorCode, NetError, Result};
pub use frame::{Frame, FrameError, FrameType};
pub use server::{Server, ServerConfig, ServerHandle};
pub use session::{Output, SessionConfig, SessionStateMachine};
pub use transport::{raise_nofile_limit, Event, FlushProgress, Interest, Poller, Token, WriteBuf};
pub use wire::{
    Request, Response, WireHistogram, WireMetric, WireMetricValue, WireShardStats, WireStats,
    WireSubscriptionStart,
};
