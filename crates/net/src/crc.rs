//! CRC-32 (IEEE 802.3) for frame payload integrity.
//!
//! The reflected polynomial `0xEDB88320`, init `0xFFFF_FFFF`, final
//! XOR `0xFFFF_FFFF` — the same parameters as zlib/PNG/Ethernet, so a
//! third-party client can use any stock `crc32` library against the
//! values in `docs/PROTOCOL.md`. Table-driven, one 256-entry table
//! built at first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 of `data` (IEEE, reflected, `xorout = 0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The universal CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // One-bit corruption is detected.
        assert_ne!(crc32(b"223456789"), 0xCBF4_3926);
    }
}
