//! The `corrfuse-net v1` framing layer: length-prefixed binary frames
//! with magic, version, type, payload length and a CRC-32 over the
//! payload.
//!
//! ```text
//! offset  size  field
//! 0       4     magic        "CRFN" (0x43 0x52 0x46 0x4E)
//! 4       1     version      0x01
//! 5       1     type         frame type code (see [`FrameType`])
//! 6       4     payload_len  u32 LE, <= MAX_PAYLOAD
//! 10      4     crc32        u32 LE, CRC-32 (IEEE) of the payload bytes
//! 14      ...   payload      payload_len bytes
//! ```
//!
//! The full normative specification — every type code, payload layout
//! and error code — lives in `docs/PROTOCOL.md`; this module is its
//! reference implementation. Decoding is total: any byte sequence
//! yields either a [`Frame`] or a typed [`FrameError`], never a panic
//! (pinned by the fuzz-style property test in `tests/codec.rs`).

use std::fmt;
use std::io::{Read, Write};

use crate::crc::crc32;

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"CRFN";

/// The one protocol version this implementation speaks.
pub const VERSION: u8 = 1;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 14;

/// Hard cap on payload length; larger declared lengths are rejected
/// up front, and the streaming reader additionally grows its buffer
/// only with bytes actually received, so a corrupt or hostile length
/// prefix cannot force a huge buffer.
pub const MAX_PAYLOAD: u32 = 1 << 26; // 64 MiB

/// Chunk size for the streaming payload read (the allocation unit that
/// bounds memory on declared-but-unsent payloads).
const PAYLOAD_CHUNK: usize = 64 * 1024;

/// Frame type codes. Requests use `0x01..=0x7F`, responses set the high
/// bit (`0x81..=0xFF`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameType {
    /// Version negotiation; MUST be the first frame on a connection.
    Hello = 0x01,
    /// One tenant-scoped event batch (journal-codec text payload).
    Ingest = 0x02,
    /// Query: posterior scores of one tenant.
    Scores = 0x03,
    /// Query: accept/reject decisions of one tenant.
    Decisions = 0x04,
    /// Read-your-writes barrier: apply everything accepted so far.
    Flush = 0x05,
    /// Query: per-connection + per-shard statistics.
    Stats = 0x06,
    /// Liveness probe.
    Ping = 0x07,
    /// Ask the server to stop (honoured only when enabled server-side).
    Shutdown = 0x08,
    /// Query: self-describing metrics snapshot (counters, gauges and
    /// latency histograms); the growable successor to the fixed-width
    /// [`FrameType::Stats`] records.
    Metrics = 0x09,
    /// Open a replication subscription on one shard. On success the
    /// connection leaves request/response and enters **replication
    /// mode** (see `docs/PROTOCOL.md` §7).
    Subscribe = 0x0A,
    /// Follower acknowledgement that every batch up to the carried
    /// epoch is applied. Replication mode only; elicits no response.
    EpochAck = 0x0B,

    /// Positive reply to [`FrameType::Hello`].
    HelloOk = 0x81,
    /// One ingest batch accepted.
    IngestOk = 0x82,
    /// Scores payload.
    ScoresOk = 0x83,
    /// Decisions payload.
    DecisionsOk = 0x84,
    /// Barrier reached.
    FlushOk = 0x85,
    /// Statistics payload.
    StatsOk = 0x86,
    /// Reply to [`FrameType::Ping`].
    Pong = 0x87,
    /// Server acknowledges it will stop.
    ShutdownOk = 0x88,
    /// Metrics payload (length-prefixed name/tag/value entries).
    MetricsOk = 0x89,
    /// Positive reply to [`FrameType::Subscribe`]: how the follower
    /// bootstraps (resume or dataset snapshot). Everything after it on
    /// the connection is server-pushed [`FrameType::Batch`] frames.
    SubscribeOk = 0x8A,
    /// One replicated batch, pushed leader → follower unsolicited
    /// (replication mode only).
    Batch = 0x8B,
    /// Typed error reply (`u16` code + UTF-8 message).
    Error = 0x8F,
}

impl FrameType {
    /// All frame types, for exhaustive round-trip tests.
    pub const ALL: [FrameType; 23] = [
        FrameType::Hello,
        FrameType::Ingest,
        FrameType::Scores,
        FrameType::Decisions,
        FrameType::Flush,
        FrameType::Stats,
        FrameType::Ping,
        FrameType::Shutdown,
        FrameType::Metrics,
        FrameType::Subscribe,
        FrameType::EpochAck,
        FrameType::HelloOk,
        FrameType::IngestOk,
        FrameType::ScoresOk,
        FrameType::DecisionsOk,
        FrameType::FlushOk,
        FrameType::StatsOk,
        FrameType::Pong,
        FrameType::ShutdownOk,
        FrameType::MetricsOk,
        FrameType::SubscribeOk,
        FrameType::Batch,
        FrameType::Error,
    ];

    /// Decode a type code.
    pub fn from_code(code: u8) -> Option<FrameType> {
        FrameType::ALL.into_iter().find(|t| *t as u8 == code)
    }

    /// True for response types (high bit set).
    pub fn is_response(self) -> bool {
        (self as u8) & 0x80 != 0
    }

    /// Lowercase snake-case name, used as the per-type suffix of the
    /// server's `net_decode_ns_*` / `net_handle_ns_*` /
    /// `net_encode_ns_*` metric series (see `docs/OBSERVABILITY.md`).
    pub fn label(self) -> &'static str {
        match self {
            FrameType::Hello => "hello",
            FrameType::Ingest => "ingest",
            FrameType::Scores => "scores",
            FrameType::Decisions => "decisions",
            FrameType::Flush => "flush",
            FrameType::Stats => "stats",
            FrameType::Ping => "ping",
            FrameType::Shutdown => "shutdown",
            FrameType::Metrics => "metrics",
            FrameType::Subscribe => "subscribe",
            FrameType::EpochAck => "epoch_ack",
            FrameType::HelloOk => "hello_ok",
            FrameType::IngestOk => "ingest_ok",
            FrameType::ScoresOk => "scores_ok",
            FrameType::DecisionsOk => "decisions_ok",
            FrameType::FlushOk => "flush_ok",
            FrameType::StatsOk => "stats_ok",
            FrameType::Pong => "pong",
            FrameType::ShutdownOk => "shutdown_ok",
            FrameType::MetricsOk => "metrics_ok",
            FrameType::SubscribeOk => "subscribe_ok",
            FrameType::Batch => "batch",
            FrameType::Error => "error",
        }
    }
}

/// A framing-layer violation. Everything the decoder can object to is a
/// variant here — decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The frame's version byte is not one this side speaks.
    UnsupportedVersion(u8),
    /// Unknown frame type code.
    UnknownType(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    PayloadTooLarge {
        /// Declared length.
        len: u32,
        /// The cap it violated.
        max: u32,
    },
    /// The buffer/stream ended before the declared frame did.
    Truncated {
        /// Bytes needed to finish the header or payload.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The payload's CRC-32 does not match the header's.
    CrcMismatch {
        /// CRC declared in the header.
        declared: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
    /// The frame was well-formed but its payload was not decodable as
    /// the message its type promises.
    BadPayload(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?} (expected \"CRFN\")"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::UnknownType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            FrameError::PayloadTooLarge { len, max } => {
                write!(
                    f,
                    "declared payload length {len} exceeds the {max}-byte cap"
                )
            }
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            FrameError::CrcMismatch { declared, computed } => write!(
                f,
                "payload CRC mismatch: header says {declared:#010x}, payload is {computed:#010x}"
            ),
            FrameError::BadPayload(msg) => write!(f, "bad frame payload: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One wire frame: version, type, payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version this frame was encoded under.
    pub version: u8,
    /// The frame type.
    pub kind: FrameType,
    /// The raw payload bytes (message layout per type; see
    /// [`crate::wire`]).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A version-[`VERSION`] frame.
    pub fn new(kind: FrameType, payload: Vec<u8>) -> Frame {
        Frame {
            version: VERSION,
            kind,
            payload,
        }
    }

    /// Serialise the frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(self.version);
        out.push(self.kind as u8);
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Whether this frame's payload fits the protocol cap. Encoders
    /// must refuse to put an oversized frame on the wire — the peer's
    /// decoder is required to reject it (see `docs/PROTOCOL.md` §2).
    pub fn fits(&self) -> bool {
        self.payload.len() as u64 <= MAX_PAYLOAD as u64
    }

    /// The frame's [`FrameError::PayloadTooLarge`], for encoders that
    /// found [`Frame::fits`] false.
    pub fn oversize_error(&self) -> FrameError {
        FrameError::PayloadTooLarge {
            len: self.payload.len().min(u32::MAX as usize) as u32,
            max: MAX_PAYLOAD,
        }
    }

    /// Decode one frame from the front of `buf`. Returns the frame and
    /// the number of bytes consumed. Never panics on any input;
    /// incomplete input reports [`FrameError::Truncated`] with how many
    /// bytes are still needed, so a streaming caller can wait for more.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
        if buf.len() < HEADER_LEN {
            return Err(FrameError::Truncated {
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let header: &[u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().expect("header slice");
        let (version, kind, len, declared) = parse_header(header)?;
        let total = HEADER_LEN + len as usize;
        if buf.len() < total {
            return Err(FrameError::Truncated {
                needed: total,
                got: buf.len(),
            });
        }
        let payload = buf[HEADER_LEN..total].to_vec();
        let computed = crc32(&payload);
        if computed != declared {
            return Err(FrameError::CrcMismatch { declared, computed });
        }
        Ok((
            Frame {
                version,
                kind,
                payload,
            },
            total,
        ))
    }

    /// Blocking-read one frame from a stream. An EOF before the first
    /// header byte returns `Ok(None)` (clean close); an EOF anywhere
    /// else is an error.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Frame>, crate::error::NetError> {
        let mut header = [0u8; HEADER_LEN];
        let mut filled = 0;
        while filled < HEADER_LEN {
            match r.read(&mut header[filled..]) {
                Ok(0) => {
                    if filled == 0 {
                        return Ok(None);
                    }
                    return Err(FrameError::Truncated {
                        needed: HEADER_LEN,
                        got: filled,
                    }
                    .into());
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        // Validate the header fields before committing to the payload
        // read. The payload buffer grows only with bytes actually
        // received (bounded chunks), so a hostile length prefix on a
        // stalled connection pins no more memory than it has sent.
        let (version, kind, len, declared) = parse_header(&header)?;
        let mut payload = Vec::with_capacity((len as usize).min(PAYLOAD_CHUNK));
        let mut chunk = [0u8; PAYLOAD_CHUNK];
        while payload.len() < len as usize {
            let want = (len as usize - payload.len()).min(PAYLOAD_CHUNK);
            match r.read(&mut chunk[..want]) {
                Ok(0) => {
                    return Err(FrameError::Truncated {
                        needed: HEADER_LEN + len as usize,
                        got: HEADER_LEN + payload.len(),
                    }
                    .into())
                }
                Ok(n) => payload.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        let computed = crc32(&payload);
        if computed != declared {
            return Err(FrameError::CrcMismatch { declared, computed }.into());
        }
        Ok(Some(Frame {
            version,
            kind,
            payload,
        }))
    }

    /// Blocking-write the frame to a stream.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), crate::error::NetError> {
        w.write_all(&self.encode())?;
        Ok(())
    }
}

/// Validate a complete header and extract `(version, kind, payload_len,
/// declared_crc)`. The single source of header truth for the buffer
/// ([`Frame::decode`]) and streaming ([`Frame::read_from`]) paths, so
/// the two can never diverge on what they accept.
fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, FrameType, u32, u32), FrameError> {
    let magic: [u8; 4] = header[0..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = header[4];
    if version != VERSION {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let kind = FrameType::from_code(header[5]).ok_or(FrameError::UnknownType(header[5]))?;
    let len = u32::from_le_bytes(header[6..10].try_into().expect("4-byte slice"));
    if len > MAX_PAYLOAD {
        return Err(FrameError::PayloadTooLarge {
            len,
            max: MAX_PAYLOAD,
        });
    }
    let declared = u32::from_le_bytes(header[10..14].try_into().expect("4-byte slice"));
    Ok((version, kind, len, declared))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_type() {
        for kind in FrameType::ALL {
            let frame = Frame::new(kind, vec![1, 2, 3, kind as u8]);
            let bytes = frame.encode();
            let (back, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn request_response_split() {
        assert!(!FrameType::Ingest.is_response());
        assert!(FrameType::IngestOk.is_response());
        assert_eq!(FrameType::from_code(0x00), None);
        assert_eq!(FrameType::from_code(0x8F), Some(FrameType::Error));
    }

    #[test]
    fn corruption_is_detected() {
        let frame = Frame::new(FrameType::Ping, b"payload".to_vec());
        let good = frame.encode();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(Frame::decode(&bad), Err(FrameError::BadMagic(_))));

        let mut bad = good.clone();
        bad[4] = 9;
        assert!(matches!(
            Frame::decode(&bad),
            Err(FrameError::UnsupportedVersion(9))
        ));

        let mut bad = good.clone();
        bad[5] = 0x7E;
        assert!(matches!(
            Frame::decode(&bad),
            Err(FrameError::UnknownType(0x7E))
        ));

        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        assert!(matches!(
            Frame::decode(&bad),
            Err(FrameError::CrcMismatch { .. })
        ));

        assert!(matches!(
            Frame::decode(&good[..good.len() - 1]),
            Err(FrameError::Truncated { .. })
        ));
        assert!(matches!(
            Frame::decode(&good[..3]),
            Err(FrameError::Truncated { .. })
        ));

        let mut bad = good;
        bad[6..10].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            Frame::decode(&bad),
            Err(FrameError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let frames = vec![
            Frame::new(FrameType::Hello, vec![1, 1]),
            Frame::new(FrameType::Flush, Vec::new()),
        ];
        let mut buf = Vec::new();
        for f in &frames {
            f.write_to(&mut buf).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(Frame::read_from(&mut cursor).unwrap().unwrap(), frames[0]);
        assert_eq!(Frame::read_from(&mut cursor).unwrap().unwrap(), frames[1]);
        assert!(
            Frame::read_from(&mut cursor).unwrap().is_none(),
            "clean EOF"
        );
    }
}
