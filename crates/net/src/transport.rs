//! The transport layer: a `mio`-style readiness reactor built on
//! `poll(2)` and non-blocking sockets (in-tree, like the workspace's
//! other stand-ins — the build box has no network, so no `mio`/`libc`
//! crates).
//!
//! The pieces, bottom-up:
//!
//! * [`Poller`] — fd registration keyed by caller-chosen [`Token`]s,
//!   [`Interest`] flags, and a [`Poller::poll`] call that fills a
//!   caller-owned [`Event`] buffer. The kernel interface is
//!   level-triggered `poll(2)`; drivers use it in the edge-triggered
//!   style (drain a ready fd until `WouldBlock`) or lean on the
//!   level-triggered re-delivery for fairness — the reactor server
//!   reads one bounded chunk per wakeup and lets the next wakeup
//!   continue, so one flooding connection cannot starve the rest.
//! * [`WriteBuf`] — write-backpressure via partial-write buffering: a
//!   response that does not fit the socket buffer stays queued, the
//!   connection switches its interest to `WRITABLE`, and the next
//!   wakeup continues from the exact byte where the kernel stopped.
//! * [`raise_nofile_limit`] — best-effort `RLIMIT_NOFILE` raise so
//!   idle-scale runs (10⁴ connections = 2·10⁴ fds in-process on
//!   loopback) fit; callers size their fleets from the returned
//!   limit rather than assuming the raise succeeded.
//!
//! Nothing here knows about frames or the protocol: bytes in, bytes
//! out, readiness in between. The session layer ([`crate::session`])
//! is the pure other half; `server::serve_reactor` glues the two.
//!
//! Unix-only (the workspace targets Linux); `poll(2)` and
//! `get/setrlimit(2)` are declared directly — Rust already links libc
//! on every Unix target, so no external crate is needed.

use std::io::{self, Write};
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_ulong};
use std::time::Duration;

// ---------------------------------------------------------------------
// poll(2) FFI
// ---------------------------------------------------------------------

/// `struct pollfd` from `<poll.h>` (identical layout on every Linux
/// target this workspace builds for).
#[repr(C)]
#[derive(Clone, Copy, Debug)]
struct RawPollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(fds: *mut RawPollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

// ---------------------------------------------------------------------
// Tokens, interest, events
// ---------------------------------------------------------------------

/// Caller-chosen registration key: the reactor hands it back in every
/// [`Event`], so drivers can index straight into their connection slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// What readiness a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub const READABLE: Interest = Interest(1);
    /// Wake when the fd accepts more bytes.
    pub const WRITABLE: Interest = Interest(2);
    /// Both directions.
    pub const BOTH: Interest = Interest(3);
    /// No wakeups except errors/hangup — how a driver parks a
    /// connection (paused accepts at capacity, read-side backpressure)
    /// without losing error delivery.
    pub const NONE: Interest = Interest(0);

    /// Whether `READABLE` is included.
    pub fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether `WRITABLE` is included.
    pub fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }

    /// The union of two interests.
    pub fn with(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    fn poll_bits(self) -> i16 {
        let mut bits = 0;
        if self.is_readable() {
            bits |= POLLIN;
        }
        if self.is_writable() {
            bits |= POLLOUT;
        }
        bits
    }
}

/// One readiness wakeup for one registration.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registration's token.
    pub token: Token,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd accepts more bytes.
    pub writable: bool,
    /// The peer hung up (`POLLHUP`); a read drains what remains, then
    /// returns 0.
    pub hangup: bool,
    /// The fd is in an error state (`POLLERR`/`POLLNVAL`); close it.
    pub error: bool,
}

// ---------------------------------------------------------------------
// Poller
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Slot {
    fd: RawFd,
    interest: Interest,
}

/// The readiness reactor: a token-keyed fd table polled with one
/// `poll(2)` call per turn. Registration, re-registration and
/// deregistration are O(1) against the table; the pollfd array is
/// rebuilt lazily when the registration set changes.
#[derive(Debug, Default)]
pub struct Poller {
    slots: Vec<Option<Slot>>,
    registered: usize,
    pollfds: Vec<RawPollFd>,
    /// `pollfds[i]` belongs to token `index[i]`.
    index: Vec<usize>,
    dirty: bool,
}

impl Poller {
    /// An empty reactor.
    pub fn new() -> Poller {
        Poller::default()
    }

    /// Register `fd` under `token`. The token must be free.
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        if self.slots.len() <= token.0 {
            self.slots.resize(token.0 + 1, None);
        }
        if self.slots[token.0].is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("token {} is already registered", token.0),
            ));
        }
        self.slots[token.0] = Some(Slot { fd, interest });
        self.registered += 1;
        self.dirty = true;
        Ok(())
    }

    /// Replace the interest of an existing registration.
    pub fn reregister(&mut self, token: Token, interest: Interest) -> io::Result<()> {
        match self.slots.get_mut(token.0).and_then(Option::as_mut) {
            Some(slot) => {
                if slot.interest != interest {
                    slot.interest = interest;
                    self.dirty = true;
                }
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("token {} is not registered", token.0),
            )),
        }
    }

    /// Remove a registration (the fd itself is untouched — closing it
    /// is the caller's business).
    pub fn deregister(&mut self, token: Token) -> io::Result<()> {
        match self.slots.get_mut(token.0) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.registered -= 1;
                self.dirty = true;
                Ok(())
            }
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("token {} is not registered", token.0),
            )),
        }
    }

    /// How many fds are currently registered.
    pub fn registered(&self) -> usize {
        self.registered
    }

    /// Wait up to `timeout` (forever when `None`) for readiness and
    /// fill `events` with every ready registration. Returns the number
    /// of events delivered; an interrupting signal delivers zero (the
    /// caller just polls again), so callers never see `EINTR`.
    pub fn poll(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        if self.dirty {
            self.pollfds.clear();
            self.index.clear();
            for (token, slot) in self.slots.iter().enumerate() {
                if let Some(slot) = slot {
                    self.pollfds.push(RawPollFd {
                        fd: slot.fd,
                        events: slot.interest.poll_bits(),
                        revents: 0,
                    });
                    self.index.push(token);
                }
            }
            self.dirty = false;
        }
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round sub-millisecond timeouts up so a 50µs deadline does
            // not become a busy loop.
            Some(d) => d
                .as_millis()
                .clamp(u128::from(d.as_nanos() > 0), c_int::MAX as u128)
                as c_int,
        };
        let n = unsafe {
            poll(
                self.pollfds.as_mut_ptr(),
                self.pollfds.len() as c_ulong,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        if n > 0 {
            for (i, pfd) in self.pollfds.iter().enumerate() {
                if pfd.revents == 0 {
                    continue;
                }
                events.push(Event {
                    token: Token(self.index[i]),
                    readable: pfd.revents & POLLIN != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & POLLHUP != 0,
                    error: pfd.revents & (POLLERR | POLLNVAL) != 0,
                });
                if events.len() == n as usize {
                    break;
                }
            }
        }
        Ok(events.len())
    }
}

// ---------------------------------------------------------------------
// Write-backpressure buffer
// ---------------------------------------------------------------------

/// Whether a [`WriteBuf::flush_to`] drained everything or hit a kernel
/// buffer limit mid-write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushProgress {
    /// Every queued byte is on the wire.
    Done,
    /// The sink reported `WouldBlock`; the remainder stays queued and
    /// the caller should wait for a `WRITABLE` wakeup.
    Partial,
}

/// Queued outbound bytes with partial-write continuation: what turns a
/// slow-reading peer into buffered bytes instead of a blocked reactor.
#[derive(Debug, Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    /// An empty buffer.
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Queue bytes behind whatever is already pending.
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes still waiting to go out.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Write as much as the sink takes right now. `WouldBlock` is not
    /// an error — it returns [`FlushProgress::Partial`] with the
    /// remainder (continuing from the exact byte the kernel stopped
    /// at); `Interrupted` retries in place. Everything else is fatal
    /// for the connection.
    pub fn flush_to(&mut self, w: &mut impl Write) -> io::Result<FlushProgress> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.compact();
                    return Ok(FlushProgress::Partial);
                }
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(FlushProgress::Done)
    }

    /// Drop already-written bytes once they dominate the buffer, so a
    /// long-lived trickling connection cannot grow it without bound.
    fn compact(&mut self) {
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

// ---------------------------------------------------------------------
// RLIMIT_NOFILE
// ---------------------------------------------------------------------

#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

const RLIMIT_NOFILE: c_int = 7;

extern "C" {
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

/// Best-effort raise of the fd limit to at least `want`, returning the
/// soft limit actually in force afterwards. Idle-scale callers (10⁴
/// loopback connections are 2·10⁴ fds in one process) size their fleet
/// from the return value instead of assuming the raise worked: with
/// privilege the hard limit is raised too, without it the soft limit
/// moves up to the hard cap and no further.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 1024; // the POSIX floor; nothing better to report
    }
    if lim.rlim_cur >= want {
        return lim.rlim_cur;
    }
    if lim.rlim_max < want {
        // Raising the hard limit needs privilege; try, ignore failure.
        let raised = RLimit {
            rlim_cur: want,
            rlim_max: want,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            return want;
        }
    }
    let capped = RLimit {
        rlim_cur: want.min(lim.rlim_max),
        rlim_max: lim.rlim_max,
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &capped) } == 0 {
        capped.rlim_cur
    } else {
        lim.rlim_cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readiness_follows_data() {
        let (a, mut b) = pair();
        a.set_nonblocking(true).unwrap();
        let mut poller = Poller::new();
        poller
            .register(a.as_raw_fd(), Token(7), Interest::READABLE)
            .unwrap();

        let mut events = Vec::new();
        let n = poller
            .poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "nothing written yet");

        b.write_all(b"ping").unwrap();
        let n = poller
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, Token(7));
        assert!(events[0].readable);

        let mut got = [0u8; 8];
        let read = (&a).read(&mut got).unwrap();
        assert_eq!(&got[..read], b"ping");
    }

    #[test]
    fn interest_none_suppresses_read_wakeups() {
        let (a, mut b) = pair();
        let mut poller = Poller::new();
        poller
            .register(a.as_raw_fd(), Token(0), Interest::NONE)
            .unwrap();
        b.write_all(b"x").unwrap();
        let mut events = Vec::new();
        let n = poller
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "parked registration must not wake on data");
        poller.reregister(Token(0), Interest::READABLE).unwrap();
        let n = poller
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn deregister_frees_the_token() {
        let (a, b) = pair();
        let mut poller = Poller::new();
        poller
            .register(a.as_raw_fd(), Token(3), Interest::READABLE)
            .unwrap();
        assert!(poller
            .register(b.as_raw_fd(), Token(3), Interest::READABLE)
            .is_err());
        poller.deregister(Token(3)).unwrap();
        assert_eq!(poller.registered(), 0);
        poller
            .register(b.as_raw_fd(), Token(3), Interest::WRITABLE)
            .unwrap();
        assert_eq!(poller.registered(), 1);
    }

    #[test]
    fn hangup_is_reported() {
        let (a, b) = pair();
        let mut poller = Poller::new();
        poller
            .register(a.as_raw_fd(), Token(1), Interest::READABLE)
            .unwrap();
        drop(b);
        let mut events = Vec::new();
        let n = poller
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable || events[0].hangup);
    }

    #[test]
    fn write_buf_continues_partial_writes() {
        struct Throttle {
            accepted: Vec<u8>,
            budget: usize,
        }
        impl Write for Throttle {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                let n = buf.len().min(self.budget);
                self.accepted.extend_from_slice(&buf[..n]);
                self.budget -= n;
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut sink = Throttle {
            accepted: Vec::new(),
            budget: 3,
        };
        let mut wbuf = WriteBuf::new();
        wbuf.push(b"hello");
        assert_eq!(wbuf.flush_to(&mut sink).unwrap(), FlushProgress::Partial);
        assert_eq!(wbuf.pending(), 2);
        wbuf.push(b" world");
        sink.budget = usize::MAX;
        assert_eq!(wbuf.flush_to(&mut sink).unwrap(), FlushProgress::Done);
        assert_eq!(sink.accepted, b"hello world");
        assert!(wbuf.is_empty());
    }

    #[test]
    fn nofile_limit_reports_a_usable_value() {
        let limit = raise_nofile_limit(256);
        assert!(limit >= 256 || limit >= 1024);
    }
}
