//! The TCP [`Server`]: two interchangeable back ends over one session
//! state machine, forwarding decoded batches into an owned
//! [`ShardRouter`].
//!
//! ```text
//!                        ┌── thread-per-connection (default) ──────────┐
//!  remote producers ─TCP─┤    accept loop ─ permit ─▶ handler thread   │
//!                        │                            blocking read ─▶ │
//!                        └── reactor (ServerConfig::reactor(true)) ────┤
//!                             one poll(2) thread, 10⁴ idle conns =     │
//!                             fds not threads (crate::transport)       │
//!                                                                      ▼
//!                                        SessionStateMachine (crate::session)
//!                                          HELLO/ACL/framing/ordering
//!                                                      │ Request
//!                                                      ▼
//!                                        ShardRouter::ingest / scores /
//!                                        decisions / flush / stats
//! ```
//!
//! * Both back ends drive the same sans-I/O [`SessionStateMachine`], so
//!   their wire behaviour is identical by construction — the
//!   `tests/net_equivalence.rs` server-mode axis pins it bitwise.
//! * The server **owns** the router (connections share it through an
//!   `Arc`); [`Server::serve`] runs until [`ServerHandle::stop`] fires
//!   or a remote `SHUTDOWN` is honoured, then gracefully shuts the
//!   router down and returns the final [`RouterStats`].
//! * Backpressure propagates as protocol-level `BUSY` errors: when the
//!   router's policy is `Reject`/`Timeout` a full shard queue turns
//!   into a retryable [`ErrorCode::Busy`] response, while the `Block`
//!   policy stalls the connection (natural TCP backpressure) — on the
//!   reactor back end that stalls the whole reactor turn, so prefer
//!   `Reject`/`Timeout` or generous queues there.
//! * Slow *readers* never stall the reactor: responses queue in a
//!   partial-write buffer ([`crate::transport::WriteBuf`]) and the
//!   connection stops being read past a high-water mark until the peer
//!   drains.
//! * A poisoned shard answers with the **fatal**
//!   [`ErrorCode::ShardPoisoned`] so clients stop retrying.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use corrfuse_obs::{Counter, Gauge, Histogram, MetricSample, MetricValue, Registry, Span};
use corrfuse_serve::queue::Pop;
use corrfuse_serve::{RouterStats, ServeError, ShardRouter, Subscription, SubscriptionStart};

use crate::acl::AclTable;
use crate::error::{code_of, ErrorCode, NetError, Result};
use crate::frame::{Frame, FrameError, FrameType};
use crate::session::{MonotonicClock, Output, SessionConfig, SessionStateMachine};
use crate::sync::Semaphore;
use crate::transport::{FlushProgress, Interest, Poller, Token, WriteBuf};
use crate::wire::{Request, Response, WireMetric, WireStats, WireSubscriptionStart};

/// Read chunk size for both back ends: bounds per-wakeup work on the
/// reactor (fairness) and the stack/heap churn on handler threads.
const READ_CHUNK: usize = 64 * 1024;

/// Reactor write-buffer high-water mark: past this many queued response
/// bytes the connection stops being *read* until the peer drains, so a
/// client that queries but never reads cannot balloon server memory.
const WRITE_HIGH_WATER: usize = 1 << 20;

/// The reactor's registration token for the listener (connections get
/// `slot + 1`).
const LISTENER: Token = Token(0);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently served connections. On the thread back end
    /// this is the accept-semaphore permit count; on the reactor it is
    /// the registered-connection cap (accepts pause at capacity).
    /// Further connections queue in the OS accept backlog.
    pub max_connections: usize,
    /// Honour remote `SHUTDOWN` requests. Off by default: a production
    /// front door should only stop from its own process; the example
    /// pair and tests enable it so a client can end the run.
    pub accept_shutdown: bool,
    /// Metrics registry for wire-level instrumentation. When set,
    /// connection handlers record per-frame-type decode/handle/encode
    /// latency histograms (`net_decode_ns_<type>` etc. — catalog in
    /// `docs/OBSERVABILITY.md`), the reactor exports its
    /// `net_reactor_*` series, and the `METRICS` reply carries the
    /// registry's full snapshot. `None` (the default) keeps the request
    /// loop free of clock reads; `METRICS` still answers with the
    /// router-derived series. Share the same registry with
    /// [`corrfuse_serve::RouterConfig::with_metrics`] to get the shard
    /// pipeline's stage histograms in the same snapshot.
    pub metrics: Option<Arc<Registry>>,
    /// Serve with the readiness reactor (one `poll(2)` thread holding
    /// every connection as a file descriptor) instead of
    /// thread-per-connection. Both back ends share the session state
    /// machine, so wire behaviour is identical; the default stays
    /// thread-per-connection.
    pub reactor: bool,
    /// Per-tenant ACL table enforced by the session layer on
    /// tenant-scoped requests and `SUBSCRIBE` (see [`crate::acl`]).
    /// `None` (the default) leaves the server open.
    pub acl: Option<Arc<AclTable>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            accept_shutdown: false,
            metrics: None,
            reactor: false,
            acl: None,
        }
    }
}

impl ServerConfig {
    /// The defaults: 64 connections, remote shutdown disabled,
    /// thread-per-connection, no ACL.
    pub fn new() -> ServerConfig {
        ServerConfig::default()
    }

    /// Set the connection bound.
    pub fn with_max_connections(mut self, n: usize) -> ServerConfig {
        self.max_connections = n;
        self
    }

    /// Allow clients to stop the server with a `SHUTDOWN` request.
    pub fn with_accept_shutdown(mut self, allow: bool) -> ServerConfig {
        self.accept_shutdown = allow;
        self
    }

    /// Record wire-level latency into `registry` and serve its snapshot
    /// through `METRICS` (see [`ServerConfig::metrics`]).
    pub fn with_metrics(mut self, registry: Arc<Registry>) -> ServerConfig {
        self.metrics = Some(registry);
        self
    }

    /// Select the readiness-reactor back end (see
    /// [`ServerConfig::reactor`]).
    pub fn reactor(mut self, on: bool) -> ServerConfig {
        self.reactor = on;
        self
    }

    /// Enforce `acl` on tenant-scoped requests (see [`crate::acl`]).
    pub fn with_acl(mut self, acl: AclTable) -> ServerConfig {
        self.acl = Some(Arc::new(acl));
        self
    }
}

/// The session-layer slice of a server configuration.
fn session_config(config: &ServerConfig) -> SessionConfig {
    let mut sc = SessionConfig::new().with_accept_shutdown(config.accept_shutdown);
    if let Some(acl) = &config.acl {
        sc = sc.with_acl(Arc::clone(acl));
    }
    sc
}

fn new_session(config: &ServerConfig) -> SessionStateMachine {
    let sm = SessionStateMachine::new(session_config(config));
    if config.metrics.is_some() {
        sm.with_clock(MonotonicClock::new())
    } else {
        sm
    }
}

/// A handle that can stop a running [`Server`] from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Ask the server to stop: no new connections are accepted, live
    /// connections are closed once their in-flight request finishes
    /// (a mid-read handler is unblocked by a socket shutdown), and
    /// [`Server::serve`] returns after the graceful router shutdown —
    /// every *accepted* ingest batch is applied and journaled before
    /// the final stats come back.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection; the
        // accept loop re-checks the flag before handling it. (The
        // reactor needs no wake — it polls with a sliced timeout — but
        // the connection is harmless there.)
        let _ = TcpStream::connect_timeout(&wake_addr(self.addr), Duration::from_millis(250));
    }

    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// The network front door; see the module docs.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    router: Arc<ShardRouter>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) and take
    /// ownership of the router. The router keeps serving its in-process
    /// API through [`Server::router`] while the server runs.
    pub fn bind(
        addr: impl ToSocketAddrs,
        router: ShardRouter,
        config: ServerConfig,
    ) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            router: Arc::new(router),
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// The owned router (for in-process reads next to the network
    /// traffic).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// A shared handle to the owned router, for in-process operations
    /// that must outlive a borrow of the server — e.g. driving a live
    /// tenant migration ([`ShardRouter::migrate_tenant`]) or a
    /// rebalancer loop from another thread while [`crate::spawn`] owns
    /// the server.
    pub fn router_handle(&self) -> Arc<ShardRouter> {
        Arc::clone(&self.router)
    }

    /// A stop handle, safe to move to another thread.
    pub fn handle(&self) -> Result<ServerHandle> {
        Ok(ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr()?,
        })
    }

    /// Serve until stopped with the configured back end. Blocking. On
    /// stop, winds down every connection, shuts the router down
    /// gracefully (drain queues, seal journals) and returns the final
    /// stats.
    pub fn serve(self) -> Result<RouterStats> {
        if self.config.reactor {
            self.serve_reactor()
        } else {
            self.serve_threads()
        }
    }

    /// The thread-per-connection back end: accepts bounded by a
    /// semaphore, one blocking handler thread per connection.
    fn serve_threads(self) -> Result<RouterStats> {
        let sem = Arc::new(Semaphore::new(self.config.max_connections));
        // The bound address cannot change after bind; resolve it once.
        let addr = self.local_addr()?;
        // Handler join handles paired with a clone of their socket, so
        // shutdown can unblock a handler parked in a read.
        let mut handlers: Vec<(JoinHandle<()>, TcpStream)> = Vec::new();
        loop {
            // Take the permit *before* accepting, so at most
            // `max_connections` handlers run and the overflow waits in
            // the OS backlog instead of in half-served threads. The
            // wait is sliced so a stop still lands when every permit is
            // held by an idle connection (whose socket only gets
            // force-closed *after* this loop exits).
            let permit = loop {
                if self.stop.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(p) = sem.acquire_timeout(Duration::from_millis(50)) {
                    break Some(p);
                }
            };
            let Some(permit) = permit else { break };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _peer) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) if self.stop.load(Ordering::SeqCst) => break,
                Err(_) => {
                    // Accept errors (ECONNABORTED, EMFILE under load)
                    // are transient from the listener's point of view;
                    // bailing out here would leak parked handlers and
                    // skip the graceful router shutdown. Back off
                    // briefly and keep accepting — a stop still exits
                    // through the permit loop.
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            };
            if self.stop.load(Ordering::SeqCst) {
                // The wake-up connection from `ServerHandle::stop` (or a
                // client racing the stop); drop it unserved.
                break;
            }
            handlers.retain(|(h, _)| !h.is_finished());
            // Without the shutdown clone the connection cannot be
            // force-closed at stop time; refuse it rather than serve
            // it unsupervised.
            let Ok(socket) = stream.try_clone() else {
                continue;
            };
            let router = Arc::clone(&self.router);
            let config = self.config.clone();
            let stop = Arc::clone(&self.stop);
            let spawned = std::thread::Builder::new()
                .name("corrfuse-net-conn".to_string())
                .spawn(move || {
                    let _permit = permit;
                    let _ = handle_connection(stream, &router, &config, &stop, addr);
                });
            match spawned {
                Ok(join) => handlers.push((join, socket)),
                // Thread exhaustion: refuse this connection (dropping
                // the stream closes it) instead of abandoning the
                // already-accepted ones.
                Err(_) => continue,
            }
        }
        drop(self.listener);
        // Force-close live connections so handlers blocked in a read
        // wake up; in-flight requests already read still complete.
        for (_, socket) in &handlers {
            let _ = socket.shutdown(std::net::Shutdown::Both);
        }
        for (h, _) in handlers {
            let _ = h.join();
        }
        // Handlers are joined, so ours is the last Arc; fall back to a
        // plain drop (drain + seal via Drop) in the pathological case.
        match Arc::try_unwrap(self.router) {
            Ok(router) => router.shutdown().map_err(serve_to_net),
            Err(_) => Err(NetError::Protocol(
                "router still shared after handler join".to_string(),
            )),
        }
    }

    /// The reactor back end: one thread, every connection a registered
    /// fd. Level-triggered `poll(2)` wakeups with one bounded read per
    /// connection per turn keep service fair — a flooding or dribbling
    /// connection costs one chunk a turn, never the whole turn.
    fn serve_reactor(self) -> Result<RouterStats> {
        let Server {
            listener,
            router,
            config,
            stop,
        } = self;
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new();
        poller.register(listener.as_raw_fd(), LISTENER, Interest::READABLE)?;
        let metrics = config.metrics.as_ref().map(ReactorMetrics::new);
        let mut conns: Vec<Option<ReactorConn>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut events = Vec::new();
        let mut chunk = vec![0u8; READ_CHUNK];
        // Replication hand-offs: sockets move to dedicated blocking
        // threads (replication links are few; request traffic stays on
        // the reactor). The socket clone force-closes them at stop.
        let mut repl: Vec<(JoinHandle<()>, TcpStream)> = Vec::new();
        let mut live: usize = 0;
        let mut accept_paused = false;

        while !stop.load(Ordering::SeqCst) {
            // The sliced timeout doubles as the stop check cadence.
            poller.poll(&mut events, Some(Duration::from_millis(50)))?;
            if let Some(m) = &metrics {
                m.wakeups.inc();
            }
            for &ev in &events {
                if ev.token == LISTENER {
                    accept_paused = accept_ready(
                        &listener,
                        &mut poller,
                        &mut conns,
                        &mut free,
                        &mut live,
                        &config,
                        &stop,
                        metrics.as_ref(),
                    );
                    continue;
                }
                let slot = ev.token.0 - 1;
                let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
                    continue;
                };
                let mut gone = ev.error;
                let mut handoff = None;
                if !gone && (ev.readable || ev.hangup) && conn.interest.is_readable() {
                    // Fairness: one bounded read per wakeup. Leftover
                    // kernel bytes keep the fd level-triggered ready,
                    // so the next turn continues exactly here.
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => gone = true,
                        Ok(n) => {
                            conn.sm.feed(&chunk[..n]);
                            match drive_conn(conn, &router, &config, &stop) {
                                Drive::Keep => {}
                                Drive::Stop => {
                                    stop.store(true, Ordering::SeqCst);
                                }
                                Drive::Replicate { shard, start, sub } => {
                                    handoff = Some((shard, start, sub));
                                }
                            }
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => gone = true,
                    }
                }
                if let Some((shard, start, sub)) = handoff {
                    poller.deregister(ev.token).ok();
                    let conn = conns[slot].take().expect("handoff conn");
                    free.push(slot);
                    live -= 1;
                    if let Some(m) = &metrics {
                        m.registered.set(live as i64);
                    }
                    if let Some(pair) = hand_off_replication(conn, &router, shard, start, sub) {
                        repl.push(pair);
                    }
                } else if gone || !flush_and_rearm(conn, &mut poller, ev.token, metrics.as_ref()) {
                    poller.deregister(ev.token).ok();
                    conns[slot] = None; // dropping the conn closes the fd
                    free.push(slot);
                    live -= 1;
                    if let Some(m) = &metrics {
                        m.registered.set(live as i64);
                    }
                }
                if accept_paused && live < config.max_connections {
                    poller.reregister(LISTENER, Interest::READABLE).ok();
                    accept_paused = false;
                }
            }
        }
        drop(listener);
        // Wind down: deliver what fits in a bounded blocking flush
        // (ShutdownOk to the client that asked, tail responses), then
        // close everything and take the router down gracefully.
        for conn in conns.into_iter().flatten() {
            let mut conn = conn;
            conn.stream.set_nonblocking(false).ok();
            conn.stream
                .set_write_timeout(Some(Duration::from_millis(250)))
                .ok();
            let _ = conn.wbuf.flush_to(&mut conn.stream);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        for (_, socket) in &repl {
            let _ = socket.shutdown(std::net::Shutdown::Both);
        }
        for (h, _) in repl {
            let _ = h.join();
        }
        match Arc::try_unwrap(router) {
            Ok(router) => router.shutdown().map_err(serve_to_net),
            Err(_) => Err(NetError::Protocol(
                "router still shared after reactor shutdown".to_string(),
            )),
        }
    }
}

/// One reactor-held connection: the non-blocking stream, its session
/// machine, per-connection driver state and the partial-write buffer.
struct ReactorConn {
    stream: TcpStream,
    sm: SessionStateMachine,
    driver: ConnDriver,
    wbuf: WriteBuf,
    closing: bool,
    interest: Interest,
}

/// The reactor's own metric series (`docs/OBSERVABILITY.md`).
struct ReactorMetrics {
    wakeups: Arc<Counter>,
    registered: Arc<Gauge>,
    partial_writes: Arc<Counter>,
}

impl ReactorMetrics {
    fn new(registry: &Arc<Registry>) -> ReactorMetrics {
        ReactorMetrics {
            wakeups: registry.counter("net_reactor_wakeups"),
            registered: registry.gauge("net_reactor_registered_conns"),
            partial_writes: registry.counter("net_reactor_partial_writes"),
        }
    }
}

/// Drain the accept backlog into connection slots; returns whether
/// accepting is paused at the connection cap.
#[allow(clippy::too_many_arguments)]
fn accept_ready(
    listener: &TcpListener,
    poller: &mut Poller,
    conns: &mut Vec<Option<ReactorConn>>,
    free: &mut Vec<usize>,
    live: &mut usize,
    config: &ServerConfig,
    stop: &AtomicBool,
    metrics: Option<&ReactorMetrics>,
) -> bool {
    loop {
        if *live >= config.max_connections {
            // At capacity: park the listener (the backlog holds the
            // overflow) until a connection closes.
            poller.reregister(LISTENER, Interest::NONE).ok();
            return true;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stop.load(Ordering::SeqCst) {
                    // The stop wake-up (or a client racing it); the
                    // main loop exits on its next check.
                    return false;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                stream.set_nodelay(true).ok();
                let slot = free.pop().unwrap_or_else(|| {
                    conns.push(None);
                    conns.len() - 1
                });
                if poller
                    .register(stream.as_raw_fd(), Token(slot + 1), Interest::READABLE)
                    .is_err()
                {
                    free.push(slot);
                    continue; // dropping the stream refuses it
                }
                conns[slot] = Some(ReactorConn {
                    stream,
                    sm: new_session(config),
                    driver: ConnDriver::new(config),
                    wbuf: WriteBuf::new(),
                    closing: false,
                    interest: Interest::READABLE,
                });
                *live += 1;
                if let Some(m) = metrics {
                    m.registered.set(*live as i64);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Transient accept errors (ECONNABORTED, EMFILE): give up
            // on this turn, the listener stays registered.
            Err(_) => return false,
        }
    }
}

/// What [`drive_conn`] wants the reactor to do with the connection.
enum Drive {
    Keep,
    /// A remote `SHUTDOWN` was honoured: stop the server once the
    /// queued `SHUTDOWN_OK` is out.
    Stop,
    /// A `SUBSCRIBE` succeeded: hand the socket to a replication
    /// thread.
    Replicate {
        shard: usize,
        start: SubscriptionStart,
        sub: Subscription,
    },
}

/// Pump the session machine's outputs into the write buffer, answering
/// application requests inline.
fn drive_conn(
    conn: &mut ReactorConn,
    router: &ShardRouter,
    config: &ServerConfig,
    stop: &AtomicBool,
) -> Drive {
    let mut result = Drive::Keep;
    while let Some(out) = conn.sm.pop_output() {
        match out {
            Output::Write(bytes) => conn.wbuf.push(&bytes),
            Output::Close => conn.closing = true,
            Output::App { request, decode_ns } => {
                match conn
                    .driver
                    .handle(&mut conn.sm, router, config, stop, request, decode_ns)
                {
                    Handled::Done => {}
                    Handled::StopServer => result = Drive::Stop,
                    Handled::Replicate { shard, start, sub } => {
                        return Drive::Replicate { shard, start, sub };
                    }
                }
            }
        }
    }
    result
}

/// Flush what the socket takes now and re-arm interest; returns `false`
/// when the connection should close (write error, or it finished
/// closing). Read interest is dropped past the write high-water mark —
/// backpressure against peers that query without reading.
fn flush_and_rearm(
    conn: &mut ReactorConn,
    poller: &mut Poller,
    token: Token,
    metrics: Option<&ReactorMetrics>,
) -> bool {
    match conn.wbuf.flush_to(&mut conn.stream) {
        Ok(FlushProgress::Done) => {}
        Ok(FlushProgress::Partial) => {
            if let Some(m) = metrics {
                m.partial_writes.inc();
            }
        }
        Err(_) => return false,
    }
    if conn.closing && conn.wbuf.is_empty() {
        return false;
    }
    let mut interest = Interest::NONE;
    if !conn.closing && conn.wbuf.pending() < WRITE_HIGH_WATER {
        interest = interest.with(Interest::READABLE);
    }
    if !conn.wbuf.is_empty() {
        interest = interest.with(Interest::WRITABLE);
    }
    if interest != conn.interest {
        if poller.reregister(token, interest).is_err() {
            return false;
        }
        conn.interest = interest;
    }
    true
}

/// Move a subscribed connection off the reactor onto a dedicated
/// blocking thread running [`replicate`]. Returns the join handle and a
/// socket clone for stop-time force-close.
fn hand_off_replication(
    mut conn: ReactorConn,
    router: &Arc<ShardRouter>,
    shard: usize,
    start: SubscriptionStart,
    sub: Subscription,
) -> Option<(JoinHandle<()>, TcpStream)> {
    let leftover = conn.sm.detach();
    let socket = conn.stream.try_clone().ok()?;
    let router = Arc::clone(router);
    let join = std::thread::Builder::new()
        .name("corrfuse-net-repl".to_string())
        .spawn(move || {
            let mut stream = conn.stream;
            if stream.set_nonblocking(false).is_err() {
                return;
            }
            // Deliver any responses still queued from request mode
            // before the SUBSCRIBE_OK.
            while !conn.wbuf.is_empty() {
                match conn.wbuf.flush_to(&mut stream) {
                    Ok(FlushProgress::Done) => break,
                    Ok(FlushProgress::Partial) => continue,
                    Err(_) => return,
                }
            }
            let _ = replicate(stream, leftover, &router, shard, start, sub);
        })
        .ok()?;
    Some((join, socket))
}

fn serve_to_net(e: ServeError) -> NetError {
    NetError::Protocol(format!("router shutdown failed: {e}"))
}

/// The address the stop wake-up dials: a wildcard bind (`0.0.0.0` /
/// `::`) is not connectable on every platform, so substitute the
/// loopback of the same family, keeping the bound port.
fn wake_addr(mut addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        match addr {
            SocketAddr::V4(_) => addr.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
            SocketAddr::V6(_) => addr.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
        }
    }
    addr
}

/// Per-connection counters (surfaced through `STATS`).
#[derive(Debug, Default)]
struct ConnStats {
    batches: u64,
    events: u64,
}

/// Per-connection cache of the per-frame-type wire histograms
/// (`net_<stage>_ns_<type>`), so the request loop pays one map probe
/// per record instead of a registry lookup with its name formatting.
struct ConnSpans {
    registry: Arc<Registry>,
    cache: HashMap<(&'static str, FrameType), Arc<Histogram>>,
}

impl ConnSpans {
    fn record(&mut self, stage: &'static str, kind: FrameType, ns: u64) {
        let registry = &self.registry;
        self.cache
            .entry((stage, kind))
            .or_insert_with(|| registry.histogram(&format!("net_{stage}_ns_{}", kind.label())))
            .record(ns);
    }
}

/// What [`ConnDriver::handle`] tells the back end beyond "responded".
enum Handled {
    /// The response went through [`SessionStateMachine::respond`].
    Done,
    /// An honoured `SHUTDOWN`: its `SHUTDOWN_OK` is queued; stop the
    /// server once it is flushed.
    StopServer,
    /// A successful `SUBSCRIBE`: no response queued — [`replicate`]
    /// writes the `SUBSCRIBE_OK` and owns the connection from here.
    Replicate {
        shard: usize,
        start: SubscriptionStart,
        sub: Subscription,
    },
}

/// The application request handler both back ends share: everything
/// between a decoded [`Request`] and the [`Response`] handed back to
/// the session machine. Keeping this in one place (like the machine
/// itself) is what pins the two back ends to identical wire behaviour.
struct ConnDriver {
    stats: ConnStats,
    seq: u64,
    spans: Option<ConnSpans>,
    timed: bool,
}

impl ConnDriver {
    fn new(config: &ServerConfig) -> ConnDriver {
        let spans = config.metrics.as_ref().map(|r| ConnSpans {
            registry: Arc::clone(r),
            cache: HashMap::new(),
        });
        ConnDriver {
            stats: ConnStats::default(),
            seq: 0,
            timed: spans.is_some(),
            spans,
        }
    }

    fn handle(
        &mut self,
        sm: &mut SessionStateMachine,
        router: &ShardRouter,
        config: &ServerConfig,
        stop: &AtomicBool,
        request: Request,
        decode_ns: u64,
    ) -> Handled {
        let req_kind = request.frame_type();
        if let Some(sp) = self.spans.as_mut() {
            sp.record("decode", req_kind, decode_ns);
        }
        let handle_span = Span::start(self.timed);
        let mut outcome = Handled::Done;
        let response = match request {
            // The session machine answers HELLO, EPOCH_ACK, gated
            // SHUTDOWN and ACL denials itself; mirror its messages
            // here so a future machine change cannot panic the server.
            Request::Hello { .. } => Response::Error {
                code: ErrorCode::Malformed,
                message: "HELLO is only valid as the first frame".to_string(),
            },
            Request::EpochAck { .. } => Response::Error {
                code: ErrorCode::Malformed,
                message: "EPOCH_ACK is only valid in replication mode".to_string(),
            },
            Request::Ingest { tenant, events } => {
                if stop.load(Ordering::SeqCst) {
                    Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is stopping".to_string(),
                    }
                } else {
                    let n = events.len() as u64;
                    match router.ingest(tenant, events) {
                        Ok(()) => {
                            self.seq += 1;
                            self.stats.batches += 1;
                            self.stats.events += n;
                            Response::IngestOk { seq: self.seq }
                        }
                        Err(e) => error_response(&e),
                    }
                }
            }
            Request::Scores { tenant, min_epoch } => {
                let result = match min_epoch {
                    Some(e) => router.scores_at(tenant, e),
                    None => router.scores(tenant),
                };
                match result {
                    Ok(scores) => Response::ScoresOk { scores },
                    Err(e) => error_response(&e),
                }
            }
            Request::Decisions { tenant, min_epoch } => {
                let result = match min_epoch {
                    Some(e) => router.decisions_at(tenant, e),
                    None => router.decisions(tenant),
                };
                match result {
                    Ok(decisions) => Response::DecisionsOk { decisions },
                    Err(e) => error_response(&e),
                }
            }
            Request::Flush => match router.flush() {
                Ok(()) => Response::FlushOk,
                Err(e) => error_response(&e),
            },
            // `min_epoch` is ignored on the leader: its stats are the
            // authoritative present. Followers gate on their applied
            // epoch before answering.
            Request::Stats { min_epoch: _ } => {
                let mut wire = WireStats::from_router(&router.stats());
                wire.conn_frames = sm.frames();
                wire.conn_batches = self.stats.batches;
                wire.conn_events = self.stats.events;
                Response::StatsOk { stats: wire }
            }
            Request::Ping => Response::Pong,
            Request::Metrics => metrics_response(config.metrics.as_ref(), router),
            // The machine only forwards SHUTDOWN when the config
            // honours it.
            Request::Shutdown => {
                outcome = Handled::StopServer;
                Response::ShutdownOk
            }
            Request::Subscribe { shard, from_epoch } => {
                if stop.load(Ordering::SeqCst) {
                    Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is stopping".to_string(),
                    }
                } else {
                    match router.subscribe(shard as usize, from_epoch) {
                        // The connection leaves request/response for
                        // good: `replicate` owns it until the follower
                        // disconnects or the subscription closes.
                        Ok((start, sub)) => {
                            if let Some(sp) = self.spans.as_mut() {
                                sp.record("handle", req_kind, handle_span.elapsed_ns());
                            }
                            return Handled::Replicate {
                                shard: shard as usize,
                                start,
                                sub,
                            };
                        }
                        Err(e) => error_response(&e),
                    }
                }
            }
        };
        if let Some(sp) = self.spans.as_mut() {
            sp.record("handle", req_kind, handle_span.elapsed_ns());
        }
        let (resp_kind, encode_ns) = sm.respond(response);
        if let Some(sp) = self.spans.as_mut() {
            sp.record("encode", resp_kind, encode_ns);
        }
        outcome
    }
}

/// The `METRICS` reply body: the registry snapshot (when the server has
/// one) plus router-derived series that are always present — the PR 5/6
/// joint-delta, lift-graph and cache counters the frozen `STATS` records
/// deliberately do not carry, and per-shard queue-pressure gauges.
fn metrics_response(registry: Option<&Arc<Registry>>, router: &ShardRouter) -> Response {
    let mut samples = registry.map(|r| r.snapshot()).unwrap_or_default();
    let stats = router.stats();
    let agg = stats.aggregate();
    let counter = |name: &str, v: u64| MetricSample {
        name: name.to_string(),
        value: MetricValue::Counter(v),
    };
    let gauge = |name: &str, v: i64| MetricSample {
        name: name.to_string(),
        value: MetricValue::Gauge(v),
    };
    samples.extend([
        counter("serve_batches", agg.batches),
        counter("serve_merged_batches", agg.merged_batches),
        counter("serve_ingested_events", agg.ingested_events),
        counter("serve_ingest_errors", agg.ingest_errors),
        counter("serve_rescored", agg.rescored),
        counter("serve_flips", agg.flips),
        counter("serve_refit_model", agg.refit_model),
        counter("serve_refit_cluster", agg.refit_cluster),
        counter("serve_refit_full", agg.refit_full),
        counter("serve_ingest_ns_none", agg.ingest_ns_none),
        counter("serve_ingest_ns_model", agg.ingest_ns_model),
        counter("serve_ingest_ns_cluster", agg.ingest_ns_cluster),
        counter("serve_ingest_ns_full", agg.ingest_ns_full),
        counter("serve_joint_delta_rows", agg.joint_delta.delta_rows),
        counter("serve_joint_rescans", agg.joint_delta.rescans),
        counter("serve_joint_invalidations", agg.joint_delta.invalidations),
        gauge(
            "serve_joint_memo_entries",
            agg.joint_delta.memo_entries as i64,
        ),
        counter("serve_joint_memo_evictions", agg.joint_delta.memo_evictions),
        gauge("serve_lift_pairs_exact", agg.lift.pairs_exact as i64),
        counter(
            "serve_lift_pairs_sketch_pruned",
            agg.lift.pairs_sketch_pruned,
        ),
        counter("serve_joint_cache_hits", agg.joint_cache.hits),
        counter("serve_joint_cache_misses", agg.joint_cache.misses),
        counter("serve_score_cache_hits", agg.score_cache.hits),
        counter("serve_score_cache_misses", agg.score_cache.misses),
        counter("serve_journal_rotations", agg.rotations),
        counter("serve_migrations_in", agg.migrations_in),
        counter("serve_migrations_out", agg.migrations_out),
        counter("serve_migrations_failed", agg.migrations_failed),
        gauge("serve_scoring_threads", agg.scoring_threads as i64),
    ]);
    // Per-shard migration traffic: the summed counters cannot say which
    // shard sheds tenants and which absorbs them.
    for m in &agg.migrations {
        if m.migrations_in + m.migrations_out + m.migrations_failed > 0 {
            samples.push(counter(
                &format!("serve_migrations_in_shard_{}", m.shard),
                m.migrations_in,
            ));
            samples.push(counter(
                &format!("serve_migrations_out_shard_{}", m.shard),
                m.migrations_out,
            ));
            samples.push(counter(
                &format!("serve_migrations_failed_shard_{}", m.shard),
                m.migrations_failed,
            ));
        }
    }
    for q in &agg.queue {
        samples.push(gauge(
            &format!("serve_queue_depth_shard_{}", q.shard),
            q.depth as i64,
        ));
        samples.push(gauge(
            &format!("serve_queue_high_water_shard_{}", q.shard),
            q.high_water as i64,
        ));
    }
    // Replication epochs and lag. The lag gauge counts only shards with
    // a live subscriber — an idle tap is not "behind", it has no
    // follower to be behind.
    let mut lag: u64 = 0;
    for s in &stats.shards {
        samples.push(gauge(
            &format!("serve_epoch_shard_{}", s.shard),
            s.epoch as i64,
        ));
        samples.push(gauge(
            &format!("replica_applied_epoch_shard_{}", s.shard),
            s.replica_acked_epoch as i64,
        ));
        if s.replica_subscribers > 0 {
            lag += s.epoch.saturating_sub(s.replica_acked_epoch);
        }
    }
    samples.push(gauge("replica_lag_batches", lag as i64));
    samples.sort_by(|a, b| a.name.cmp(&b.name));
    Response::MetricsOk {
        metrics: WireMetric::from_samples(&samples),
    }
}

/// Serve one connection on the thread back end: blocking chunk reads
/// feeding the same session machine the reactor drives.
fn handle_connection(
    mut stream: TcpStream,
    router: &ShardRouter,
    config: &ServerConfig,
    stop: &AtomicBool,
    addr: SocketAddr,
) -> Result<()> {
    stream.set_nodelay(true).ok();
    let mut sm = new_session(config);
    let mut driver = ConnDriver::new(config);
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF between frames is a clean close; inside a frame
                // it is a truncation.
                return if sm.buffered() == 0 {
                    Ok(())
                } else {
                    Err(FrameError::Truncated {
                        needed: sm.buffered() + 1,
                        got: sm.buffered(),
                    }
                    .into())
                };
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        };
        sm.feed(&chunk[..n]);
        while let Some(out) = sm.pop_output() {
            match out {
                Output::Write(bytes) => stream.write_all(&bytes)?,
                Output::Close => {
                    write_pending(&mut sm, &mut stream)?;
                    stream.flush()?;
                    return Ok(());
                }
                Output::App { request, decode_ns } => {
                    match driver.handle(&mut sm, router, config, stop, request, decode_ns) {
                        Handled::Done => {}
                        Handled::StopServer => {
                            write_pending(&mut sm, &mut stream)?;
                            stream.flush()?;
                            stop.store(true, Ordering::SeqCst);
                            // Wake the accept loop exactly like
                            // `ServerHandle::stop`.
                            let _ = TcpStream::connect_timeout(
                                &wake_addr(addr),
                                Duration::from_millis(250),
                            );
                            return Ok(());
                        }
                        Handled::Replicate { shard, start, sub } => {
                            write_pending(&mut sm, &mut stream)?;
                            stream.flush()?;
                            let leftover = sm.detach();
                            return replicate(stream, leftover, router, shard, start, sub);
                        }
                    }
                }
            }
        }
        stream.flush()?;
    }
}

/// Drain the machine's already-queued writes to the stream (used before
/// leaving the request loop, when the pop-loop will not run again).
fn write_pending(sm: &mut SessionStateMachine, stream: &mut TcpStream) -> Result<()> {
    while let Some(out) = sm.pop_output() {
        if let Output::Write(bytes) = out {
            stream.write_all(&bytes)?;
        }
    }
    Ok(())
}

fn error_response(e: &ServeError) -> Response {
    Response::Error {
        code: code_of(e),
        message: e.to_string(),
    }
}

/// Replication mode: after the `SUBSCRIBE_OK` goes out, a pusher thread
/// streams the subscription's `BATCH` frames over the write half while
/// this thread reads `EPOCH_ACK`s off the read half (the one protocol
/// state where the server sends unsolicited frames — `docs/PROTOCOL.md`
/// §7). `leftover` is whatever the session machine had buffered past
/// the SUBSCRIBE (a pipelined ACK, typically) — it is replayed ahead of
/// the socket. Any other client frame is a protocol violation that ends
/// the connection; the follower resubscribes from its applied epoch.
fn replicate(
    stream: TcpStream,
    leftover: Vec<u8>,
    router: &ShardRouter,
    shard: usize,
    start: SubscriptionStart,
    sub: Subscription,
) -> Result<()> {
    let mut reader = std::io::Cursor::new(leftover).chain(stream.try_clone()?);
    let mut writer = stream;
    let start = match start {
        SubscriptionStart::Resume => WireSubscriptionStart::Resume,
        SubscriptionStart::Snapshot {
            epoch,
            dataset,
            threshold,
        } => WireSubscriptionStart::Snapshot {
            epoch,
            threshold,
            dataset,
        },
    };
    let frame = Response::SubscribeOk { start }.to_frame();
    if !frame.fits() {
        // A snapshot dataset past MAX_PAYLOAD cannot be bootstrapped
        // over this protocol version; report instead of wedging the
        // peer's decoder.
        let err = frame.oversize_error();
        Response::Error {
            code: ErrorCode::Internal,
            message: err.to_string(),
        }
        .to_frame()
        .write_to(&mut writer)?;
        writer.flush()?;
        return Err(NetError::Frame(err));
    }
    frame.write_to(&mut writer)?;
    writer.flush()?;
    // Shutdown story: the pusher wakes on `done` (ack reader exited),
    // on the subscription closing (router shutdown, or the tap dropped
    // a fallen-behind follower), or on a write failure; it then shuts
    // the socket down, which unblocks the ack reader. Neither thread
    // can strand the other.
    let done = Arc::new(AtomicBool::new(false));
    let push_done = Arc::clone(&done);
    let pusher = std::thread::Builder::new()
        .name("corrfuse-net-push".to_string())
        .spawn(move || {
            while !push_done.load(Ordering::SeqCst) {
                match sub.recv_deadline(Some(Instant::now() + Duration::from_millis(50))) {
                    Pop::Item(b) => {
                        let frame = Response::Batch {
                            epoch: b.epoch,
                            text: b.text,
                        }
                        .to_frame();
                        let sent = frame
                            .write_to(&mut writer)
                            .and_then(|()| Ok(writer.flush()?));
                        if sent.is_err() {
                            break;
                        }
                    }
                    Pop::TimedOut => continue,
                    Pop::Closed => break,
                }
            }
            let _ = writer.shutdown(std::net::Shutdown::Both);
        })?;
    let result = loop {
        match Frame::read_from(&mut reader) {
            Ok(Some(frame)) => match Request::from_frame(&frame) {
                Ok(Request::EpochAck { shard: s, epoch }) if s as usize == shard => {
                    let _ = router.record_ack(shard, epoch);
                }
                Ok(other) => {
                    break Err(NetError::Protocol(format!(
                        "{other:?} is not valid in replication mode"
                    )))
                }
                Err(e) => break Err(NetError::Frame(e)),
            },
            Ok(None) => break Ok(()), // follower left cleanly
            Err(e) => break Err(e),
        }
    };
    done.store(true, Ordering::SeqCst);
    let _ = pusher.join();
    result
}

/// Run a [`Server`] on a background thread. Returns the stop handle and
/// the join handle yielding the final router stats — the shape tests,
/// benches and embedders want.
pub fn spawn(server: Server) -> Result<(ServerHandle, JoinHandle<Result<RouterStats>>)> {
    let handle = server.handle()?;
    let join = std::thread::Builder::new()
        .name("corrfuse-net-accept".to_string())
        .spawn(move || server.serve())?;
    Ok((handle, join))
}
