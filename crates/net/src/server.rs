//! The blocking TCP [`Server`]: thread-per-connection, bounded by an
//! accept semaphore, forwarding decoded batches into an owned
//! [`ShardRouter`].
//!
//! ```text
//!  remote producers ── TCP ──▶ accept loop ── permit ──▶ handler thread
//!                                (bounded by                 │
//!                                 max_connections)           ▼
//!                                               HELLO negotiation, then
//!                                               frame → Request → router
//!                                                            │
//!                                                            ▼
//!                                               ShardRouter::ingest / scores /
//!                                               decisions / flush / stats
//! ```
//!
//! * The server **owns** the router (connections share it through an
//!   `Arc`); [`Server::serve`] runs until [`ServerHandle::stop`] fires
//!   or a remote `SHUTDOWN` is honoured, then joins every handler,
//!   gracefully shuts the router down and returns the final
//!   [`RouterStats`].
//! * Backpressure propagates as protocol-level `BUSY` errors: when the
//!   router's policy is `Reject`/`Timeout` a full shard queue turns
//!   into a retryable [`ErrorCode::Busy`] response, while the `Block`
//!   policy simply stalls the connection (natural TCP backpressure).
//! * A poisoned shard answers with the **fatal**
//!   [`ErrorCode::ShardPoisoned`] so clients stop retrying.
//! * Each connection keeps its own counters, surfaced through the
//!   `STATS` request alongside the per-shard router stats.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use corrfuse_obs::{Histogram, MetricSample, MetricValue, Registry, Span};
use corrfuse_serve::queue::Pop;
use corrfuse_serve::{RouterStats, ServeError, ShardRouter, Subscription, SubscriptionStart};

use crate::error::{code_of, ErrorCode, NetError, Result};
use crate::frame::{Frame, FrameType, VERSION};
use crate::sync::Semaphore;
use crate::wire::{Request, Response, WireMetric, WireStats, WireSubscriptionStart};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently served connections (the accept-semaphore
    /// permit count). Further connections queue in the OS accept
    /// backlog until a handler finishes.
    pub max_connections: usize,
    /// Honour remote `SHUTDOWN` requests. Off by default: a production
    /// front door should only stop from its own process; the example
    /// pair and tests enable it so a client can end the run.
    pub accept_shutdown: bool,
    /// Metrics registry for wire-level instrumentation. When set,
    /// connection handlers record per-frame-type decode/handle/encode
    /// latency histograms (`net_decode_ns_<type>` etc. — catalog in
    /// `docs/OBSERVABILITY.md`), and the `METRICS` reply carries the
    /// registry's full snapshot. `None` (the default) keeps the request
    /// loop free of clock reads; `METRICS` still answers with the
    /// router-derived series. Share the same registry with
    /// [`corrfuse_serve::RouterConfig::with_metrics`] to get the shard
    /// pipeline's stage histograms in the same snapshot.
    pub metrics: Option<Arc<Registry>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            accept_shutdown: false,
            metrics: None,
        }
    }
}

impl ServerConfig {
    /// The defaults: 64 connections, remote shutdown disabled.
    pub fn new() -> ServerConfig {
        ServerConfig::default()
    }

    /// Set the connection bound.
    pub fn with_max_connections(mut self, n: usize) -> ServerConfig {
        self.max_connections = n;
        self
    }

    /// Allow clients to stop the server with a `SHUTDOWN` request.
    pub fn with_accept_shutdown(mut self, allow: bool) -> ServerConfig {
        self.accept_shutdown = allow;
        self
    }

    /// Record wire-level latency into `registry` and serve its snapshot
    /// through `METRICS` (see [`ServerConfig::metrics`]).
    pub fn with_metrics(mut self, registry: Arc<Registry>) -> ServerConfig {
        self.metrics = Some(registry);
        self
    }
}

/// A handle that can stop a running [`Server`] from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Ask the server to stop: no new connections are accepted, live
    /// connections are closed once their in-flight request finishes
    /// (a mid-read handler is unblocked by a socket shutdown), and
    /// [`Server::serve`] returns after the graceful router shutdown —
    /// every *accepted* ingest batch is applied and journaled before
    /// the final stats come back.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection; the
        // accept loop re-checks the flag before handling it.
        let _ = TcpStream::connect_timeout(&wake_addr(self.addr), Duration::from_millis(250));
    }

    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// The network front door; see the module docs.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    router: Arc<ShardRouter>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) and take
    /// ownership of the router. The router keeps serving its in-process
    /// API through [`Server::router`] while the server runs.
    pub fn bind(
        addr: impl ToSocketAddrs,
        router: ShardRouter,
        config: ServerConfig,
    ) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            router: Arc::new(router),
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// The owned router (for in-process reads next to the network
    /// traffic).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// A shared handle to the owned router, for in-process operations
    /// that must outlive a borrow of the server — e.g. driving a live
    /// tenant migration ([`ShardRouter::migrate_tenant`]) or a
    /// rebalancer loop from another thread while [`crate::spawn`] owns
    /// the server.
    pub fn router_handle(&self) -> Arc<ShardRouter> {
        Arc::clone(&self.router)
    }

    /// A stop handle, safe to move to another thread.
    pub fn handle(&self) -> Result<ServerHandle> {
        Ok(ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr()?,
        })
    }

    /// Serve until stopped. Blocking: accepts connections (bounded by
    /// the semaphore), one handler thread each. On stop, joins every
    /// handler, shuts the router down gracefully (drain queues, seal
    /// journals) and returns the final stats.
    pub fn serve(self) -> Result<RouterStats> {
        let sem = Arc::new(Semaphore::new(self.config.max_connections));
        // The bound address cannot change after bind; resolve it once.
        let addr = self.local_addr()?;
        // Handler join handles paired with a clone of their socket, so
        // shutdown can unblock a handler parked in a read.
        let mut handlers: Vec<(JoinHandle<()>, TcpStream)> = Vec::new();
        loop {
            // Take the permit *before* accepting, so at most
            // `max_connections` handlers run and the overflow waits in
            // the OS backlog instead of in half-served threads. The
            // wait is sliced so a stop still lands when every permit is
            // held by an idle connection (whose socket only gets
            // force-closed *after* this loop exits).
            let permit = loop {
                if self.stop.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(p) = sem.acquire_timeout(Duration::from_millis(50)) {
                    break Some(p);
                }
            };
            let Some(permit) = permit else { break };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _peer) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) if self.stop.load(Ordering::SeqCst) => break,
                Err(_) => {
                    // Accept errors (ECONNABORTED, EMFILE under load)
                    // are transient from the listener's point of view;
                    // bailing out here would leak parked handlers and
                    // skip the graceful router shutdown. Back off
                    // briefly and keep accepting — a stop still exits
                    // through the permit loop.
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            };
            if self.stop.load(Ordering::SeqCst) {
                // The wake-up connection from `ServerHandle::stop` (or a
                // client racing the stop); drop it unserved.
                break;
            }
            handlers.retain(|(h, _)| !h.is_finished());
            // Without the shutdown clone the connection cannot be
            // force-closed at stop time; refuse it rather than serve
            // it unsupervised.
            let Ok(socket) = stream.try_clone() else {
                continue;
            };
            let router = Arc::clone(&self.router);
            let config = self.config.clone();
            let stop = Arc::clone(&self.stop);
            let spawned = std::thread::Builder::new()
                .name("corrfuse-net-conn".to_string())
                .spawn(move || {
                    let _permit = permit;
                    let _ = handle_connection(stream, &router, &config, &stop, addr);
                });
            match spawned {
                Ok(join) => handlers.push((join, socket)),
                // Thread exhaustion: refuse this connection (dropping
                // the stream closes it) instead of abandoning the
                // already-accepted ones.
                Err(_) => continue,
            }
        }
        drop(self.listener);
        // Force-close live connections so handlers blocked in a read
        // wake up; in-flight requests already read still complete.
        for (_, socket) in &handlers {
            let _ = socket.shutdown(std::net::Shutdown::Both);
        }
        for (h, _) in handlers {
            let _ = h.join();
        }
        // Handlers are joined, so ours is the last Arc; fall back to a
        // plain drop (drain + seal via Drop) in the pathological case.
        match Arc::try_unwrap(self.router) {
            Ok(router) => router.shutdown().map_err(serve_to_net),
            Err(_) => Err(NetError::Protocol(
                "router still shared after handler join".to_string(),
            )),
        }
    }
}

fn serve_to_net(e: ServeError) -> NetError {
    NetError::Protocol(format!("router shutdown failed: {e}"))
}

/// The address the stop wake-up dials: a wildcard bind (`0.0.0.0` /
/// `::`) is not connectable on every platform, so substitute the
/// loopback of the same family, keeping the bound port.
fn wake_addr(mut addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        match addr {
            SocketAddr::V4(_) => addr.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
            SocketAddr::V6(_) => addr.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
        }
    }
    addr
}

/// Per-connection counters (surfaced through `STATS`).
#[derive(Debug, Default)]
struct ConnStats {
    frames: u64,
    batches: u64,
    events: u64,
}

/// Per-connection cache of the per-frame-type wire histograms
/// (`net_<stage>_ns_<type>`), so the request loop pays one map probe
/// per record instead of a registry lookup with its name formatting.
struct ConnSpans {
    registry: Arc<Registry>,
    cache: HashMap<(&'static str, FrameType), Arc<Histogram>>,
}

impl ConnSpans {
    fn record(&mut self, stage: &'static str, kind: FrameType, ns: u64) {
        let registry = &self.registry;
        self.cache
            .entry((stage, kind))
            .or_insert_with(|| registry.histogram(&format!("net_{stage}_ns_{}", kind.label())))
            .record(ns);
    }
}

/// The `METRICS` reply body: the registry snapshot (when the server has
/// one) plus router-derived series that are always present — the PR 5/6
/// joint-delta, lift-graph and cache counters the frozen `STATS` records
/// deliberately do not carry, and per-shard queue-pressure gauges.
fn metrics_response(registry: Option<&Arc<Registry>>, router: &ShardRouter) -> Response {
    let mut samples = registry.map(|r| r.snapshot()).unwrap_or_default();
    let stats = router.stats();
    let agg = stats.aggregate();
    let counter = |name: &str, v: u64| MetricSample {
        name: name.to_string(),
        value: MetricValue::Counter(v),
    };
    let gauge = |name: &str, v: i64| MetricSample {
        name: name.to_string(),
        value: MetricValue::Gauge(v),
    };
    samples.extend([
        counter("serve_batches", agg.batches),
        counter("serve_merged_batches", agg.merged_batches),
        counter("serve_ingested_events", agg.ingested_events),
        counter("serve_ingest_errors", agg.ingest_errors),
        counter("serve_rescored", agg.rescored),
        counter("serve_flips", agg.flips),
        counter("serve_refit_model", agg.refit_model),
        counter("serve_refit_cluster", agg.refit_cluster),
        counter("serve_refit_full", agg.refit_full),
        counter("serve_ingest_ns_none", agg.ingest_ns_none),
        counter("serve_ingest_ns_model", agg.ingest_ns_model),
        counter("serve_ingest_ns_cluster", agg.ingest_ns_cluster),
        counter("serve_ingest_ns_full", agg.ingest_ns_full),
        counter("serve_joint_delta_rows", agg.joint_delta.delta_rows),
        counter("serve_joint_rescans", agg.joint_delta.rescans),
        counter("serve_joint_invalidations", agg.joint_delta.invalidations),
        gauge(
            "serve_joint_memo_entries",
            agg.joint_delta.memo_entries as i64,
        ),
        counter("serve_joint_memo_evictions", agg.joint_delta.memo_evictions),
        gauge("serve_lift_pairs_exact", agg.lift.pairs_exact as i64),
        counter(
            "serve_lift_pairs_sketch_pruned",
            agg.lift.pairs_sketch_pruned,
        ),
        counter("serve_joint_cache_hits", agg.joint_cache.hits),
        counter("serve_joint_cache_misses", agg.joint_cache.misses),
        counter("serve_score_cache_hits", agg.score_cache.hits),
        counter("serve_score_cache_misses", agg.score_cache.misses),
        counter("serve_journal_rotations", agg.rotations),
        counter("serve_migrations_in", agg.migrations_in),
        counter("serve_migrations_out", agg.migrations_out),
        counter("serve_migrations_failed", agg.migrations_failed),
        gauge("serve_scoring_threads", agg.scoring_threads as i64),
    ]);
    // Per-shard migration traffic: the summed counters cannot say which
    // shard sheds tenants and which absorbs them.
    for m in &agg.migrations {
        if m.migrations_in + m.migrations_out + m.migrations_failed > 0 {
            samples.push(counter(
                &format!("serve_migrations_in_shard_{}", m.shard),
                m.migrations_in,
            ));
            samples.push(counter(
                &format!("serve_migrations_out_shard_{}", m.shard),
                m.migrations_out,
            ));
            samples.push(counter(
                &format!("serve_migrations_failed_shard_{}", m.shard),
                m.migrations_failed,
            ));
        }
    }
    for q in &agg.queue {
        samples.push(gauge(
            &format!("serve_queue_depth_shard_{}", q.shard),
            q.depth as i64,
        ));
        samples.push(gauge(
            &format!("serve_queue_high_water_shard_{}", q.shard),
            q.high_water as i64,
        ));
    }
    // Replication epochs and lag. The lag gauge counts only shards with
    // a live subscriber — an idle tap is not "behind", it has no
    // follower to be behind.
    let mut lag: u64 = 0;
    for s in &stats.shards {
        samples.push(gauge(
            &format!("serve_epoch_shard_{}", s.shard),
            s.epoch as i64,
        ));
        samples.push(gauge(
            &format!("replica_applied_epoch_shard_{}", s.shard),
            s.replica_acked_epoch as i64,
        ));
        if s.replica_subscribers > 0 {
            lag += s.epoch.saturating_sub(s.replica_acked_epoch);
        }
    }
    samples.push(gauge("replica_lag_batches", lag as i64));
    samples.sort_by(|a, b| a.name.cmp(&b.name));
    Response::MetricsOk {
        metrics: WireMetric::from_samples(&samples),
    }
}

/// Serve one connection: HELLO negotiation, then the request loop.
fn handle_connection(
    mut stream: TcpStream,
    router: &ShardRouter,
    config: &ServerConfig,
    stop: &AtomicBool,
    addr: SocketAddr,
) -> Result<()> {
    stream.set_nodelay(true).ok();
    negotiate(&mut stream)?;
    let mut stats = ConnStats::default();
    let mut seq: u64 = 0;
    let mut spans = config.metrics.as_ref().map(|r| ConnSpans {
        registry: Arc::clone(r),
        cache: HashMap::new(),
    });
    let timed = spans.is_some();
    loop {
        let frame = match Frame::read_from(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()), // clean close
            Err(NetError::Frame(e)) => {
                // The stream may be mis-aligned after a framing error;
                // answer and close rather than guess at a resync point.
                let resp = Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                };
                resp.to_frame().write_to(&mut stream).ok();
                stream.flush().ok();
                return Err(NetError::Frame(e));
            }
            Err(e) => return Err(e),
        };
        stats.frames += 1;
        let req_kind = frame.kind;
        let decode_span = Span::start(timed);
        let decoded = Request::from_frame(&frame);
        if let Some(sp) = spans.as_mut() {
            sp.record("decode", req_kind, decode_span.elapsed_ns());
        }
        let request = match decoded {
            Ok(r) => r,
            Err(e) => {
                // Frame-aligned but undecodable payload: report and
                // keep serving.
                let resp = Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                };
                resp.to_frame().write_to(&mut stream)?;
                continue;
            }
        };
        let mut stop_after = false;
        let handle_span = Span::start(timed);
        let response = match request {
            Request::Hello { .. } => Response::Error {
                code: ErrorCode::Malformed,
                message: "HELLO is only valid as the first frame".to_string(),
            },
            Request::Ingest { tenant, events } => {
                if stop.load(Ordering::SeqCst) {
                    Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is stopping".to_string(),
                    }
                } else {
                    let n = events.len() as u64;
                    match router.ingest(tenant, events) {
                        Ok(()) => {
                            seq += 1;
                            stats.batches += 1;
                            stats.events += n;
                            Response::IngestOk { seq }
                        }
                        Err(e) => error_response(&e),
                    }
                }
            }
            Request::Scores { tenant, min_epoch } => {
                let result = match min_epoch {
                    Some(e) => router.scores_at(tenant, e),
                    None => router.scores(tenant),
                };
                match result {
                    Ok(scores) => Response::ScoresOk { scores },
                    Err(e) => error_response(&e),
                }
            }
            Request::Decisions { tenant, min_epoch } => {
                let result = match min_epoch {
                    Some(e) => router.decisions_at(tenant, e),
                    None => router.decisions(tenant),
                };
                match result {
                    Ok(decisions) => Response::DecisionsOk { decisions },
                    Err(e) => error_response(&e),
                }
            }
            Request::Flush => match router.flush() {
                Ok(()) => Response::FlushOk,
                Err(e) => error_response(&e),
            },
            // `min_epoch` is ignored on the leader: its stats are the
            // authoritative present. Followers gate on their applied
            // epoch before answering.
            Request::Stats { min_epoch: _ } => {
                let mut wire = WireStats::from_router(&router.stats());
                wire.conn_frames = stats.frames;
                wire.conn_batches = stats.batches;
                wire.conn_events = stats.events;
                Response::StatsOk { stats: wire }
            }
            Request::Ping => Response::Pong,
            Request::Metrics => metrics_response(config.metrics.as_ref(), router),
            Request::Shutdown => {
                if config.accept_shutdown {
                    stop_after = true;
                    Response::ShutdownOk
                } else {
                    Response::Error {
                        code: ErrorCode::Forbidden,
                        message: "remote shutdown is disabled on this server".to_string(),
                    }
                }
            }
            Request::Subscribe { shard, from_epoch } => {
                if stop.load(Ordering::SeqCst) {
                    Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is stopping".to_string(),
                    }
                } else {
                    match router.subscribe(shard as usize, from_epoch) {
                        // The connection leaves request/response for
                        // good: `replicate` owns it until the follower
                        // disconnects or the subscription closes.
                        Ok((start, sub)) => {
                            return replicate(stream, router, shard as usize, start, sub)
                        }
                        Err(e) => error_response(&e),
                    }
                }
            }
            Request::EpochAck { .. } => Response::Error {
                code: ErrorCode::Malformed,
                message: "EPOCH_ACK is only valid in replication mode".to_string(),
            },
        };
        if let Some(sp) = spans.as_mut() {
            sp.record("handle", req_kind, handle_span.elapsed_ns());
        }
        let encode_span = Span::start(timed);
        let mut frame = response.to_frame();
        if !frame.fits() {
            // Never put a frame on the wire the peer must reject (the
            // decoder enforces MAX_PAYLOAD); report the overflow as a
            // typed error instead.
            frame = Response::Error {
                code: ErrorCode::Internal,
                message: frame.oversize_error().to_string(),
            }
            .to_frame();
        }
        if let Some(sp) = spans.as_mut() {
            sp.record("encode", frame.kind, encode_span.elapsed_ns());
        }
        frame.write_to(&mut stream)?;
        stream.flush()?;
        if stop_after {
            stop.store(true, Ordering::SeqCst);
            // Wake the accept loop exactly like `ServerHandle::stop`.
            let _ = TcpStream::connect_timeout(&wake_addr(addr), Duration::from_millis(250));
            return Ok(());
        }
    }
}

fn error_response(e: &ServeError) -> Response {
    Response::Error {
        code: code_of(e),
        message: e.to_string(),
    }
}

/// Replication mode: after the `SUBSCRIBE_OK` goes out, a pusher thread
/// streams the subscription's `BATCH` frames over the write half while
/// this thread reads `EPOCH_ACK`s off the read half (the one protocol
/// state where the server sends unsolicited frames — `docs/PROTOCOL.md`
/// §7). Any other client frame is a protocol violation that ends the
/// connection; the follower resubscribes from its applied epoch.
fn replicate(
    stream: TcpStream,
    router: &ShardRouter,
    shard: usize,
    start: SubscriptionStart,
    sub: Subscription,
) -> Result<()> {
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let start = match start {
        SubscriptionStart::Resume => WireSubscriptionStart::Resume,
        SubscriptionStart::Snapshot {
            epoch,
            dataset,
            threshold,
        } => WireSubscriptionStart::Snapshot {
            epoch,
            threshold,
            dataset,
        },
    };
    let frame = Response::SubscribeOk { start }.to_frame();
    if !frame.fits() {
        // A snapshot dataset past MAX_PAYLOAD cannot be bootstrapped
        // over this protocol version; report instead of wedging the
        // peer's decoder.
        let err = frame.oversize_error();
        Response::Error {
            code: ErrorCode::Internal,
            message: err.to_string(),
        }
        .to_frame()
        .write_to(&mut writer)?;
        writer.flush()?;
        return Err(NetError::Frame(err));
    }
    frame.write_to(&mut writer)?;
    writer.flush()?;
    // Shutdown story: the pusher wakes on `done` (ack reader exited),
    // on the subscription closing (router shutdown, or the tap dropped
    // a fallen-behind follower), or on a write failure; it then shuts
    // the socket down, which unblocks the ack reader. Neither thread
    // can strand the other.
    let done = Arc::new(AtomicBool::new(false));
    let push_done = Arc::clone(&done);
    let pusher = std::thread::Builder::new()
        .name("corrfuse-net-push".to_string())
        .spawn(move || {
            while !push_done.load(Ordering::SeqCst) {
                match sub.recv_deadline(Some(Instant::now() + Duration::from_millis(50))) {
                    Pop::Item(b) => {
                        let frame = Response::Batch {
                            epoch: b.epoch,
                            text: b.text,
                        }
                        .to_frame();
                        let sent = frame
                            .write_to(&mut writer)
                            .and_then(|()| Ok(writer.flush()?));
                        if sent.is_err() {
                            break;
                        }
                    }
                    Pop::TimedOut => continue,
                    Pop::Closed => break,
                }
            }
            let _ = writer.shutdown(std::net::Shutdown::Both);
        })?;
    let result = loop {
        match Frame::read_from(&mut reader) {
            Ok(Some(frame)) => match Request::from_frame(&frame) {
                Ok(Request::EpochAck { shard: s, epoch }) if s as usize == shard => {
                    let _ = router.record_ack(shard, epoch);
                }
                Ok(other) => {
                    break Err(NetError::Protocol(format!(
                        "{other:?} is not valid in replication mode"
                    )))
                }
                Err(e) => break Err(NetError::Frame(e)),
            },
            Ok(None) => break Ok(()), // follower left cleanly
            Err(e) => break Err(e),
        }
    };
    done.store(true, Ordering::SeqCst);
    let _ = pusher.join();
    result
}

/// The HELLO handshake, server side: the first frame must be a HELLO
/// whose version range intersects ours.
fn negotiate(stream: &mut TcpStream) -> Result<()> {
    let frame = match Frame::read_from(stream)? {
        Some(f) => f,
        None => return Ok(()), // connected and left without a word
    };
    match Request::from_frame(&frame) {
        Ok(Request::Hello {
            min_version,
            max_version,
        }) => {
            if min_version <= VERSION && VERSION <= max_version {
                Response::HelloOk { version: VERSION }
                    .to_frame()
                    .write_to(stream)?;
                Ok(())
            } else {
                let resp = Response::Error {
                    code: ErrorCode::UnsupportedVersion,
                    message: format!(
                        "server speaks version {VERSION}, client offered {min_version}..={max_version}"
                    ),
                };
                resp.to_frame().write_to(stream)?;
                Err(NetError::Protocol("version negotiation failed".to_string()))
            }
        }
        _ => {
            let resp = Response::Error {
                code: ErrorCode::Malformed,
                message: "the first frame on a connection must be HELLO".to_string(),
            };
            resp.to_frame().write_to(stream).ok();
            Err(NetError::Protocol(
                "connection did not start with HELLO".to_string(),
            ))
        }
    }
}

/// Run a [`Server`] on a background thread. Returns the stop handle and
/// the join handle yielding the final router stats — the shape tests,
/// benches and embedders want.
pub fn spawn(server: Server) -> Result<(ServerHandle, JoinHandle<Result<RouterStats>>)> {
    let handle = server.handle()?;
    let join = std::thread::Builder::new()
        .name("corrfuse-net-accept".to_string())
        .spawn(move || server.serve())?;
    Ok((handle, join))
}
