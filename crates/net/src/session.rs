//! The session layer: a pure, sans-I/O per-connection state machine.
//!
//! [`SessionStateMachine`] consumes arbitrary byte chunks
//! ([`SessionStateMachine::feed`]) and emits [`Output`]s — bytes to put
//! on the wire, application requests for the driver to answer, or a
//! close. It owns everything about a connection that is *protocol*, not
//! *transport*:
//!
//! * HELLO-first enforcement and version negotiation, including the
//!   credential capture and ACL resolution ([`crate::acl`]);
//! * incremental frame decoding over a buffer that grows only with
//!   bytes actually received (a declared-but-unsent 64 MiB payload pins
//!   nothing beyond what arrived — the slow-loris bound is structural);
//! * framing errors → typed `MALFORMED` + close (the stream may be
//!   mis-aligned), frame-aligned payload errors → `MALFORMED` + keep
//!   serving;
//! * per-tenant ACL denial with the typed `FORBIDDEN` code, answered
//!   without the request ever reaching the driver;
//! * protocol-state rules: repeated HELLO, `EPOCH_ACK` outside
//!   replication, `SHUTDOWN` against a server that disabled it.
//!
//! No sockets, no threads, no clocks: behaviour is a pure function of
//! the byte stream and the [`SessionConfig`], which is what lets the
//! byte-at-a-time property in `tests/codec_fuzz.rs` drive it with
//! random chunk splits and demand identical outputs. (An optional
//! [`SessionClock`] can be injected for latency *attribution*; it never
//! influences behaviour.) Both server back ends — thread-per-connection
//! and the `poll(2)` reactor ([`crate::transport`]) — drive this same
//! machine, which is what pins them to identical wire behaviour.
//!
//! Driver contract: after feeding bytes, pop outputs until `None`. A
//! [`Output::Write`] goes on the wire in order; an [`Output::App`] must
//! be answered with [`SessionStateMachine::respond`] before the machine
//! will decode further frames (that ordering is what keeps pipelined
//! responses in request order); [`Output::Close`] means flush then
//! close. A successful `SUBSCRIBE` leaves request/response for good:
//! the driver calls [`SessionStateMachine::detach`] and takes over the
//! raw stream (plus any bytes the machine had already buffered).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use crate::acl::{Access, AclTable};
use crate::error::ErrorCode;
use crate::frame::{Frame, FrameError, FrameType, VERSION};
use crate::wire::{Request, Response};

/// Session-layer policy, extracted from the server configuration.
#[derive(Debug, Clone, Default)]
pub struct SessionConfig {
    /// Honour remote `SHUTDOWN` requests (off by default).
    pub accept_shutdown: bool,
    /// Per-tenant ACL table; `None` leaves the server open.
    pub acl: Option<Arc<AclTable>>,
}

impl SessionConfig {
    /// The defaults: shutdown refused, no ACL.
    pub fn new() -> SessionConfig {
        SessionConfig::default()
    }

    /// Honour remote `SHUTDOWN` requests.
    pub fn with_accept_shutdown(mut self, allow: bool) -> SessionConfig {
        self.accept_shutdown = allow;
        self
    }

    /// Enforce `acl` on tenant-scoped requests and `SUBSCRIBE`.
    pub fn with_acl(mut self, acl: Arc<AclTable>) -> SessionConfig {
        self.acl = Some(acl);
        self
    }
}

/// Optional monotonic time source for latency attribution. The machine
/// never *acts* on time — no timeouts, no scheduling — so the default
/// [`NoClock`] keeps it fully deterministic; servers with metrics
/// enabled inject [`MonotonicClock`] to get real decode/encode
/// nanoseconds on the emitted outputs.
pub trait SessionClock: Send {
    /// Nanoseconds from an arbitrary fixed origin.
    fn now_ns(&self) -> u64;
}

/// The default clock: always zero (pure machine, zero-cost).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoClock;

impl SessionClock for NoClock {
    fn now_ns(&self) -> u64 {
        0
    }
}

/// A real monotonic clock for metrics-enabled servers.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock(Instant);

impl MonotonicClock {
    /// A clock anchored now.
    pub fn new() -> MonotonicClock {
        MonotonicClock(Instant::now())
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl SessionClock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

/// One instruction from the session machine to its driver.
#[derive(Debug)]
pub enum Output {
    /// Put these bytes on the wire, in emission order.
    Write(Vec<u8>),
    /// An application request the driver must answer via
    /// [`SessionStateMachine::respond`]. The machine decodes no further
    /// frames until it is answered, so responses stay in request order.
    App {
        /// The decoded request.
        request: Request,
        /// Payload-decode nanoseconds (0 under [`NoClock`]).
        decode_ns: u64,
    },
    /// Flush pending writes, then close the connection.
    Close,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    AwaitHello,
    Ready,
    /// The driver took the stream over (replication hand-off).
    Detached,
    Closed,
}

/// The per-connection session state machine; see the module docs.
pub struct SessionStateMachine {
    config: SessionConfig,
    clock: Box<dyn SessionClock>,
    phase: Phase,
    buf: Vec<u8>,
    cursor: usize,
    out: VecDeque<Output>,
    /// The frame type of the App output awaiting [`respond`]
    /// (`respond` = [`SessionStateMachine::respond`]).
    pending_app: Option<FrameType>,
    /// Set when the pending App is an honoured `SHUTDOWN`: its response
    /// is the connection's last frame.
    close_after_respond: bool,
    frames: u64,
    access: Access,
    credential: Option<String>,
}

impl std::fmt::Debug for SessionStateMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionStateMachine")
            .field("phase", &self.phase)
            .field("buffered", &self.buffered())
            .field("frames", &self.frames)
            .field("pending_app", &self.pending_app)
            .finish()
    }
}

impl SessionStateMachine {
    /// A fresh session awaiting its HELLO.
    pub fn new(config: SessionConfig) -> SessionStateMachine {
        let access = if config.acl.is_some() {
            // Until the handshake resolves a credential, an ACL'd
            // server grants nothing.
            Access::Denied
        } else {
            Access::Open
        };
        SessionStateMachine {
            config,
            clock: Box::new(NoClock),
            phase: Phase::AwaitHello,
            buf: Vec::new(),
            cursor: 0,
            out: VecDeque::new(),
            pending_app: None,
            close_after_respond: false,
            frames: 0,
            access,
            credential: None,
        }
    }

    /// Inject a clock for decode/encode latency attribution.
    pub fn with_clock(mut self, clock: impl SessionClock + 'static) -> SessionStateMachine {
        self.clock = Box::new(clock);
        self
    }

    /// Consume one chunk of received bytes (any split, including one
    /// byte at a time) and advance the machine.
    pub fn feed(&mut self, bytes: &[u8]) {
        if matches!(self.phase, Phase::Closed | Phase::Detached) {
            return;
        }
        self.buf.extend_from_slice(bytes);
        self.process();
    }

    /// The next driver instruction, if any.
    pub fn pop_output(&mut self) -> Option<Output> {
        self.out.pop_front()
    }

    /// Answer the pending [`Output::App`]. Encodes the response
    /// (substituting a typed `INTERNAL` error for anything past the
    /// payload cap, so an un-decodable frame never goes on the wire),
    /// queues it as a [`Output::Write`], and resumes decoding buffered
    /// frames. Returns the encoded frame's type and the encode
    /// nanoseconds, for the driver's wire histograms.
    pub fn respond(&mut self, response: Response) -> (FrameType, u64) {
        debug_assert!(self.pending_app.is_some(), "respond without a pending App");
        let (kind, ns) = self.push_response(&response);
        self.pending_app = None;
        if self.close_after_respond {
            self.out.push_back(Output::Close);
            self.phase = Phase::Closed;
        } else {
            self.process();
        }
        (kind, ns)
    }

    /// Leave request/response mode for good (replication hand-off): the
    /// driver owns the raw stream from here. Returns any bytes the
    /// machine had buffered beyond the last consumed frame — the driver
    /// must treat them as already received.
    pub fn detach(&mut self) -> Vec<u8> {
        self.phase = Phase::Detached;
        self.pending_app = None;
        let leftover = self.buf.split_off(self.cursor);
        self.buf.clear();
        self.cursor = 0;
        leftover
    }

    /// Frames decoded on this connection so far (including the HELLO
    /// and frames whose payload failed to decode).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Bytes currently buffered awaiting a complete frame. Grows only
    /// with bytes actually received — the slow-loris property pins
    /// `buffered() == bytes fed` while a frame is incomplete.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.cursor
    }

    /// The credential presented in the HELLO, if any.
    pub fn credential(&self) -> Option<&str> {
        self.credential.as_deref()
    }

    /// The connection's resolved ACL grant.
    pub fn access(&self) -> &Access {
        &self.access
    }

    /// Whether the machine has emitted [`Output::Close`] (no further
    /// input will be processed).
    pub fn is_closed(&self) -> bool {
        self.phase == Phase::Closed
    }

    /// Whether an [`Output::App`] is waiting for
    /// [`SessionStateMachine::respond`].
    pub fn awaiting_response(&self) -> bool {
        self.pending_app.is_some()
    }

    // -----------------------------------------------------------------
    // Internals
    // -----------------------------------------------------------------

    /// Decode as many buffered frames as the protocol allows right now:
    /// stops at an incomplete frame, at an unanswered App, or when the
    /// session closes.
    fn process(&mut self) {
        while self.pending_app.is_none() && matches!(self.phase, Phase::AwaitHello | Phase::Ready) {
            let avail = &self.buf[self.cursor..];
            if avail.is_empty() {
                break;
            }
            match Frame::decode(avail) {
                Ok((frame, used)) => {
                    self.cursor += used;
                    self.frames += 1;
                    self.on_frame(&frame);
                }
                Err(FrameError::Truncated { .. }) => break,
                Err(e) => {
                    // The stream may be mis-aligned after a framing
                    // error; answer and close rather than guess at a
                    // resync point.
                    self.push_error(ErrorCode::Malformed, e.to_string());
                    self.out.push_back(Output::Close);
                    self.phase = Phase::Closed;
                    break;
                }
            }
        }
        self.compact();
    }

    fn on_frame(&mut self, frame: &Frame) {
        let t0 = self.clock.now_ns();
        let decoded = Request::from_frame(frame);
        let decode_ns = self.clock.now_ns().saturating_sub(t0);
        match self.phase {
            Phase::AwaitHello => self.on_handshake(decoded),
            Phase::Ready => match decoded {
                Ok(request) => self.on_request(request, decode_ns),
                // Frame-aligned but undecodable payload: report and
                // keep serving.
                Err(e) => self.push_error(ErrorCode::Malformed, e.to_string()),
            },
            Phase::Detached | Phase::Closed => unreachable!("process() gates on phase"),
        }
    }

    fn on_handshake(&mut self, decoded: Result<Request, FrameError>) {
        match decoded {
            Ok(Request::Hello {
                min_version,
                max_version,
                credential,
            }) => {
                if min_version <= VERSION && VERSION <= max_version {
                    if let Some(acl) = &self.config.acl {
                        self.access = acl.resolve(credential.as_deref());
                    }
                    self.credential = credential;
                    self.push_response(&Response::HelloOk { version: VERSION });
                    self.phase = Phase::Ready;
                } else {
                    self.push_error(
                        ErrorCode::UnsupportedVersion,
                        format!(
                            "server speaks version {VERSION}, \
                             client offered {min_version}..={max_version}"
                        ),
                    );
                    self.out.push_back(Output::Close);
                    self.phase = Phase::Closed;
                }
            }
            Ok(_) | Err(_) => {
                self.push_error(
                    ErrorCode::Malformed,
                    "the first frame on a connection must be HELLO".to_string(),
                );
                self.out.push_back(Output::Close);
                self.phase = Phase::Closed;
            }
        }
    }

    fn on_request(&mut self, request: Request, decode_ns: u64) {
        match &request {
            Request::Hello { .. } => {
                self.push_error(
                    ErrorCode::Malformed,
                    "HELLO is only valid as the first frame".to_string(),
                );
                return;
            }
            Request::EpochAck { .. } => {
                self.push_error(
                    ErrorCode::Malformed,
                    "EPOCH_ACK is only valid in replication mode".to_string(),
                );
                return;
            }
            Request::Shutdown if !self.config.accept_shutdown => {
                self.push_error(
                    ErrorCode::Forbidden,
                    "remote shutdown is disabled on this server".to_string(),
                );
                return;
            }
            Request::Ingest { tenant, .. }
            | Request::Scores { tenant, .. }
            | Request::Decisions { tenant, .. }
                if !self.access.allows_tenant(*tenant) =>
            {
                self.push_error(
                    ErrorCode::Forbidden,
                    format!("credential does not grant access to tenant {}", tenant.0),
                );
                return;
            }
            Request::Subscribe { .. } if !self.access.allows_replication() => {
                self.push_error(
                    ErrorCode::Forbidden,
                    "credential does not grant replication (whole-shard access)".to_string(),
                );
                return;
            }
            _ => {}
        }
        if matches!(request, Request::Shutdown) {
            self.close_after_respond = true;
        }
        self.pending_app = Some(request.frame_type());
        self.out.push_back(Output::App { request, decode_ns });
    }

    fn push_response(&mut self, response: &Response) -> (FrameType, u64) {
        let t0 = self.clock.now_ns();
        let mut frame = response.to_frame();
        if !frame.fits() {
            // Never put a frame on the wire the peer must reject (the
            // decoder enforces MAX_PAYLOAD); report the overflow as a
            // typed error instead.
            frame = Response::Error {
                code: ErrorCode::Internal,
                message: frame.oversize_error().to_string(),
            }
            .to_frame();
        }
        let kind = frame.kind;
        let bytes = frame.encode();
        let ns = self.clock.now_ns().saturating_sub(t0);
        self.out.push_back(Output::Write(bytes));
        (kind, ns)
    }

    fn push_error(&mut self, code: ErrorCode, message: String) {
        self.push_response(&Response::Error { code, message });
    }

    /// Drop consumed bytes once they dominate the buffer, so decoding
    /// many frames from one connection stays linear, not quadratic.
    fn compact(&mut self) {
        if self.cursor > 0 && (self.cursor == self.buf.len() || self.cursor >= 64 * 1024) {
            self.buf.drain(..self.cursor);
            self.cursor = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_serve::TenantId;

    fn hello_bytes(credential: Option<&str>) -> Vec<u8> {
        Request::Hello {
            min_version: VERSION,
            max_version: VERSION,
            credential: credential.map(str::to_string),
        }
        .to_frame()
        .encode()
    }

    fn drain(sm: &mut SessionStateMachine) -> Vec<Output> {
        std::iter::from_fn(|| sm.pop_output()).collect()
    }

    fn decode_writes(outputs: &[Output]) -> Vec<Response> {
        let mut bytes = Vec::new();
        for o in outputs {
            if let Output::Write(b) = o {
                bytes.extend_from_slice(b);
            }
        }
        let mut responses = Vec::new();
        let mut pos = 0;
        while pos < bytes.len() {
            let (frame, used) = Frame::decode(&bytes[pos..]).unwrap();
            responses.push(Response::from_frame(&frame).unwrap());
            pos += used;
        }
        responses
    }

    #[test]
    fn handshake_then_app_requests() {
        let mut sm = SessionStateMachine::new(SessionConfig::new());
        sm.feed(&hello_bytes(None));
        sm.feed(&Request::Ping.to_frame().encode());
        let hello_out = drain(&mut sm);
        assert_eq!(
            decode_writes(&hello_out),
            vec![Response::HelloOk { version: VERSION }]
        );
        assert!(matches!(
            hello_out.last(),
            Some(Output::App {
                request: Request::Ping,
                ..
            })
        ));
        assert!(sm.awaiting_response());
        sm.respond(Response::Pong);
        assert_eq!(decode_writes(&drain(&mut sm)), vec![Response::Pong]);
        assert_eq!(sm.frames(), 2);
    }

    #[test]
    fn apps_are_serialized_until_answered() {
        let mut sm = SessionStateMachine::new(SessionConfig::new());
        let mut bytes = hello_bytes(None);
        bytes.extend(Request::Ping.to_frame().encode());
        bytes.extend(Request::Flush.to_frame().encode());
        sm.feed(&bytes);
        let first = drain(&mut sm);
        assert!(
            matches!(
                first.last(),
                Some(Output::App {
                    request: Request::Ping,
                    ..
                })
            ),
            "second request must wait for the first response: {first:?}"
        );
        sm.respond(Response::Pong);
        let second = drain(&mut sm);
        assert!(matches!(
            second.last(),
            Some(Output::App {
                request: Request::Flush,
                ..
            })
        ));
        assert_eq!(decode_writes(&second), vec![Response::Pong]);
        sm.respond(Response::FlushOk);
        assert_eq!(decode_writes(&drain(&mut sm)), vec![Response::FlushOk]);
    }

    #[test]
    fn first_frame_must_be_hello() {
        let mut sm = SessionStateMachine::new(SessionConfig::new());
        sm.feed(&Request::Ping.to_frame().encode());
        let out = drain(&mut sm);
        assert!(matches!(out.last(), Some(Output::Close)));
        match decode_writes(&out).as_slice() {
            [Response::Error { code, .. }] => assert_eq!(*code, ErrorCode::Malformed),
            other => panic!("expected one error, got {other:?}"),
        }
        assert!(sm.is_closed());
    }

    #[test]
    fn version_mismatch_closes_with_typed_error() {
        let mut sm = SessionStateMachine::new(SessionConfig::new());
        sm.feed(
            &Request::Hello {
                min_version: 2,
                max_version: 9,
                credential: None,
            }
            .to_frame()
            .encode(),
        );
        let out = drain(&mut sm);
        match decode_writes(&out).as_slice() {
            [Response::Error { code, .. }] => assert_eq!(*code, ErrorCode::UnsupportedVersion),
            other => panic!("expected one error, got {other:?}"),
        }
        assert!(sm.is_closed());
    }

    #[test]
    fn framing_error_answers_then_closes() {
        let mut sm = SessionStateMachine::new(SessionConfig::new());
        sm.feed(&hello_bytes(None));
        drain(&mut sm);
        sm.feed(b"XXXXXXXXXXXXXXXXXX");
        let out = drain(&mut sm);
        assert!(matches!(out.last(), Some(Output::Close)));
        match decode_writes(&out).as_slice() {
            [Response::Error { code, .. }] => assert_eq!(*code, ErrorCode::Malformed),
            other => panic!("expected one error, got {other:?}"),
        }
    }

    #[test]
    fn partial_frame_pins_only_received_bytes() {
        let mut sm = SessionStateMachine::new(SessionConfig::new());
        sm.feed(&hello_bytes(None));
        drain(&mut sm);
        // A header declaring MAX_PAYLOAD, then silence: buffered() must
        // track exactly what was fed.
        let mut header = Vec::new();
        header.extend_from_slice(b"CRFN");
        header.push(VERSION);
        header.push(FrameType::Ingest as u8);
        header.extend_from_slice(&crate::frame::MAX_PAYLOAD.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        for (i, b) in header.iter().enumerate() {
            sm.feed(std::slice::from_ref(b));
            assert_eq!(sm.buffered(), i + 1);
        }
        assert!(
            drain(&mut sm).is_empty(),
            "no output for an unfinished frame"
        );
        sm.feed(&[0u8; 1024]);
        assert_eq!(sm.buffered(), header.len() + 1024);
    }

    #[test]
    fn acl_denies_tenant_scoped_requests_without_closing() {
        let acl = Arc::new(AclTable::new().allow("writer", [TenantId(0)]));
        let config = SessionConfig::new().with_acl(acl);

        // Wrong credential: HELLO_OK, then FORBIDDEN on every
        // tenant-scoped request, while PING still works.
        let mut sm = SessionStateMachine::new(config.clone());
        sm.feed(&hello_bytes(Some("intruder")));
        sm.feed(
            &Request::Scores {
                tenant: TenantId(0),
                min_epoch: None,
            }
            .to_frame()
            .encode(),
        );
        sm.feed(&Request::Ping.to_frame().encode());
        let out = drain(&mut sm);
        assert!(matches!(
            out.last(),
            Some(Output::App {
                request: Request::Ping,
                ..
            })
        ));
        sm.respond(Response::Pong);
        let mut all = out;
        all.extend(drain(&mut sm));
        let responses = decode_writes(&all);
        assert_eq!(responses[0], Response::HelloOk { version: VERSION });
        assert!(
            matches!(
                &responses[1],
                Response::Error {
                    code: ErrorCode::Forbidden,
                    ..
                }
            ),
            "{responses:?}"
        );
        assert_eq!(*responses.last().unwrap(), Response::Pong);

        // Right credential: the allowed tenant reaches the app, the
        // denied one does not, and replication is refused for a scoped
        // grant.
        let mut sm = SessionStateMachine::new(config);
        sm.feed(&hello_bytes(Some("writer")));
        sm.feed(
            &Request::Scores {
                tenant: TenantId(0),
                min_epoch: None,
            }
            .to_frame()
            .encode(),
        );
        let out = drain(&mut sm);
        assert!(matches!(
            out.last(),
            Some(Output::App {
                request: Request::Scores { .. },
                ..
            })
        ));
        sm.respond(Response::ScoresOk { scores: vec![] });
        sm.feed(
            &Request::Scores {
                tenant: TenantId(1),
                min_epoch: None,
            }
            .to_frame()
            .encode(),
        );
        sm.feed(
            &Request::Subscribe {
                shard: 0,
                from_epoch: 0,
            }
            .to_frame()
            .encode(),
        );
        let responses = decode_writes(&drain(&mut sm));
        let forbidden = responses
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    Response::Error {
                        code: ErrorCode::Forbidden,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(
            forbidden, 2,
            "denied tenant + scoped SUBSCRIBE: {responses:?}"
        );
        assert!(!sm.is_closed());
    }

    #[test]
    fn shutdown_gating_and_close_after_response() {
        let mut sm = SessionStateMachine::new(SessionConfig::new());
        sm.feed(&hello_bytes(None));
        sm.feed(&Request::Shutdown.to_frame().encode());
        let responses = decode_writes(&drain(&mut sm));
        assert!(matches!(
            &responses[1],
            Response::Error {
                code: ErrorCode::Forbidden,
                ..
            }
        ));
        assert!(!sm.is_closed());

        let mut sm = SessionStateMachine::new(SessionConfig::new().with_accept_shutdown(true));
        sm.feed(&hello_bytes(None));
        sm.feed(&Request::Shutdown.to_frame().encode());
        let out = drain(&mut sm);
        assert!(matches!(
            out.last(),
            Some(Output::App {
                request: Request::Shutdown,
                ..
            })
        ));
        sm.respond(Response::ShutdownOk);
        let out = drain(&mut sm);
        assert!(matches!(out.last(), Some(Output::Close)));
        assert!(sm.is_closed());
    }

    #[test]
    fn detach_returns_unconsumed_bytes() {
        let mut sm = SessionStateMachine::new(SessionConfig::new());
        sm.feed(&hello_bytes(None));
        drain(&mut sm);
        let sub = Request::Subscribe {
            shard: 1,
            from_epoch: 4,
        }
        .to_frame()
        .encode();
        let ack = Request::EpochAck { shard: 1, epoch: 5 }.to_frame().encode();
        let mut bytes = sub;
        bytes.extend_from_slice(&ack);
        sm.feed(&bytes);
        assert!(matches!(
            drain(&mut sm).last(),
            Some(Output::App {
                request: Request::Subscribe { .. },
                ..
            })
        ));
        let leftover = sm.detach();
        assert_eq!(leftover, ack, "the pipelined ACK belongs to the driver now");
        sm.feed(b"ignored");
        assert!(drain(&mut sm).is_empty());
    }
}
