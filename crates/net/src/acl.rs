//! Per-tenant access control for the network front door.
//!
//! The HELLO frame carries an optional credential (`docs/PROTOCOL.md`
//! §4.1). When a server is configured with an [`AclTable`], the session
//! layer resolves that credential once at handshake time into an
//! [`Access`] grant and consults it on every tenant-scoped request
//! (`INGEST`, `SCORES`, `DECISIONS`): a denied tenant gets the typed
//! `FORBIDDEN` error without the request ever reaching the router, so a
//! mixed-tenant client hitting a denied tenant cannot poison its
//! allowed-tenant pipeline — the connection keeps serving.
//!
//! The handshake itself always succeeds (modulo version negotiation):
//! an unknown or missing credential still gets `HELLO_OK`, because the
//! deny happens per request, with a message naming the tenant. That
//! keeps probing cheap to reason about and matches the optional,
//! backward-compatible wire encoding — a pre-ACL client is simply an
//! unauthenticated one.
//!
//! Replication (`SUBSCRIBE`) streams every tenant of a shard, so it is
//! only granted to credentials with unscoped access ([`Access::All`])
//! — or to anyone when the server has no ACL at all.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use corrfuse_serve::TenantId;

/// What one credential may touch.
#[derive(Debug, Clone)]
enum Grant {
    /// Every tenant, present and future.
    All,
    /// Exactly these tenants.
    Tenants(Arc<BTreeSet<u32>>),
}

/// The server's credential → tenant-grant table. Built once, shared
/// read-only across connections.
#[derive(Debug, Clone, Default)]
pub struct AclTable {
    entries: HashMap<String, Grant>,
}

impl AclTable {
    /// An empty table: every credential (and no credential) resolves to
    /// [`Access::Denied`] until grants are added. A server configured
    /// with an empty table therefore refuses all tenant traffic — use
    /// no table at all for an open server.
    pub fn new() -> AclTable {
        AclTable::default()
    }

    /// Grant `credential` every tenant (and replication).
    pub fn allow_all(mut self, credential: impl Into<String>) -> AclTable {
        self.entries.insert(credential.into(), Grant::All);
        self
    }

    /// Grant `credential` exactly `tenants`. Replaces any previous
    /// grant for the same credential.
    pub fn allow(
        mut self,
        credential: impl Into<String>,
        tenants: impl IntoIterator<Item = TenantId>,
    ) -> AclTable {
        let set: BTreeSet<u32> = tenants.into_iter().map(|t| t.0).collect();
        self.entries
            .insert(credential.into(), Grant::Tenants(Arc::new(set)));
        self
    }

    /// Number of credentials in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table holds no grants.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolve a handshake credential into the connection's grant.
    pub fn resolve(&self, credential: Option<&str>) -> Access {
        match credential.and_then(|c| self.entries.get(c)) {
            Some(Grant::All) => Access::All,
            Some(Grant::Tenants(set)) => Access::Tenants(Arc::clone(set)),
            None => Access::Denied,
        }
    }
}

/// A connection's resolved grant, fixed at handshake time.
#[derive(Debug, Clone)]
pub enum Access {
    /// The server has no ACL: everything is allowed.
    Open,
    /// ACL present, credential missing or unknown: every tenant-scoped
    /// request is `FORBIDDEN`.
    Denied,
    /// The credential grants every tenant (and replication).
    All,
    /// The credential grants exactly this tenant set.
    Tenants(Arc<BTreeSet<u32>>),
}

impl Access {
    /// Whether tenant-scoped requests for `tenant` may proceed.
    pub fn allows_tenant(&self, tenant: TenantId) -> bool {
        match self {
            Access::Open | Access::All => true,
            Access::Denied => false,
            Access::Tenants(set) => set.contains(&tenant.0),
        }
    }

    /// Whether `SUBSCRIBE` (whole-shard replication) may proceed.
    pub fn allows_replication(&self) -> bool {
        matches!(self, Access::Open | Access::All)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_resolve_per_credential() {
        let acl = AclTable::new()
            .allow_all("root")
            .allow("t0-writer", [TenantId(0)]);
        assert_eq!(acl.len(), 2);

        let root = acl.resolve(Some("root"));
        assert!(root.allows_tenant(TenantId(99)));
        assert!(root.allows_replication());

        let scoped = acl.resolve(Some("t0-writer"));
        assert!(scoped.allows_tenant(TenantId(0)));
        assert!(!scoped.allows_tenant(TenantId(1)));
        assert!(!scoped.allows_replication());

        for denied in [acl.resolve(None), acl.resolve(Some("wrong"))] {
            assert!(!denied.allows_tenant(TenantId(0)));
            assert!(!denied.allows_replication());
        }
    }

    #[test]
    fn open_access_allows_everything() {
        let open = Access::Open;
        assert!(open.allows_tenant(TenantId(7)));
        assert!(open.allows_replication());
    }
}
