//! Integration tests for the TCP server/client pair over loopback:
//! handshake and version negotiation, the request surface, protocol
//! error codes (`BUSY` vs `SHARD_POISONED` in particular), remote
//! shutdown, and reconnect resend.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use corrfuse_core::dataset::{DatasetBuilder, SourceId};
use corrfuse_core::fuser::{FuserConfig, Method};
use corrfuse_core::TripleId;
use corrfuse_net::server::spawn;
use corrfuse_net::{
    Client, ClientConfig, ErrorCode, Frame, NetError, Request, Response, Server, ServerConfig,
};
use corrfuse_serve::{Backpressure, RouterConfig, ShardRouter, TenantId};
use corrfuse_stream::Event;

fn seed(flip: bool) -> corrfuse_core::dataset::Dataset {
    let mut b = DatasetBuilder::new();
    let (s, t1) = b.observe_named("A", "x", "p", "1");
    b.label(t1, true);
    let t2 = b.triple("y", "p", "2");
    b.observe(s, t2);
    b.label(t2, flip);
    b.build().unwrap()
}

fn router(n_shards: usize, tenants: &[u32], config: RouterConfig) -> ShardRouter {
    let seeds = tenants
        .iter()
        .map(|&t| (TenantId(t), seed(false)))
        .collect();
    ShardRouter::new(
        FuserConfig::new(Method::PrecRec),
        config.with_threshold(0.5),
        seeds,
    )
    .unwrap_or_else(|e| panic!("router over {n_shards} shards: {e}"))
}

#[test]
fn full_request_surface_over_loopback() {
    let server = Server::bind(
        "127.0.0.1:0",
        router(2, &[0, 1], RouterConfig::new(2)),
        ServerConfig::new(),
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let (handle, join) = spawn(server).unwrap();

    let mut client = Client::connect(&addr).unwrap();
    client.ping().unwrap();

    // Ingest for both tenants, then read-your-writes.
    client
        .ingest(
            TenantId(0),
            &[
                Event::add_triple("z", "p", "3"),
                Event::claim(SourceId(0), TripleId(2)),
            ],
        )
        .unwrap();
    client
        .ingest(TenantId(1), &[Event::label(TripleId(1), true)])
        .unwrap();
    client.flush().unwrap();
    assert_eq!(client.acked_batches(), 2);

    let scores = client.scores(TenantId(0)).unwrap();
    assert_eq!(scores.len(), 3);
    let decisions = client.decisions(TenantId(0)).unwrap();
    assert_eq!(decisions.len(), 3);
    for (s, d) in scores.iter().zip(&decisions) {
        assert_eq!(*d, *s > 0.5, "decisions follow the threshold");
    }

    // Unknown tenant surfaces the typed code.
    match client.scores(TenantId(9)).unwrap_err() {
        NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::UnknownTenant),
        other => panic!("unexpected {other:?}"),
    }

    // Connection + shard stats.
    let stats = client.stats().unwrap();
    assert_eq!(stats.shards.len(), 2);
    assert_eq!(stats.conn_batches, 2);
    assert_eq!(stats.conn_events, 3);
    assert!(stats.conn_frames >= 6);
    assert_eq!(
        stats.shards.iter().map(|s| s.ingested_events).sum::<u64>(),
        3
    );
    assert!(stats.shards.iter().all(|s| !s.poisoned));

    // Shutdown is forbidden unless the server opted in.
    match client.shutdown_server().unwrap_err() {
        NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::Forbidden),
        other => panic!("unexpected {other:?}"),
    }

    handle.stop();
    let stats = join.join().unwrap().unwrap();
    assert_eq!(stats.aggregate().ingest_errors, 0);
}

#[test]
fn version_negotiation_and_handshake_violations() {
    let server = Server::bind(
        "127.0.0.1:0",
        router(1, &[0], RouterConfig::new(1)),
        ServerConfig::new(),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let (handle, join) = spawn(server).unwrap();

    // A client that only speaks a future version is refused.
    let mut raw = TcpStream::connect(addr).unwrap();
    Request::Hello {
        min_version: 2,
        max_version: 9,
        credential: None,
    }
    .to_frame()
    .write_to(&mut raw)
    .unwrap();
    raw.flush().unwrap();
    let frame = Frame::read_from(&mut raw).unwrap().unwrap();
    match Response::from_frame(&frame).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVersion),
        other => panic!("unexpected {other:?}"),
    }

    // A first frame that is not HELLO is a malformed handshake.
    let mut raw = TcpStream::connect(addr).unwrap();
    Request::Ping.to_frame().write_to(&mut raw).unwrap();
    raw.flush().unwrap();
    let frame = Frame::read_from(&mut raw).unwrap().unwrap();
    match Response::from_frame(&frame).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("unexpected {other:?}"),
    }

    // A HELLO again mid-session is refused without killing the session.
    let mut client = Client::connect(addr.to_string()).unwrap();
    client.ping().unwrap();

    handle.stop();
    join.join().unwrap().unwrap();
}

#[test]
fn busy_surfaces_then_retries_recover() {
    // Tiny queue + Reject: a fat first batch keeps the worker busy while
    // follow-ups overflow the queue.
    let config = RouterConfig::new(1)
        .with_queue_capacity(1)
        .with_backpressure(Backpressure::Reject)
        .with_batching(1, Duration::ZERO);
    let server = Server::bind("127.0.0.1:0", router(1, &[0], config), ServerConfig::new()).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let (handle, join) = spawn(server).unwrap();

    // No busy retries: the raw BUSY must reach the caller.
    let mut strict = Client::connect_with(
        &addr,
        ClientConfig::new()
            .with_busy_retries(0, Duration::ZERO)
            .with_max_in_flight(64),
    )
    .unwrap();
    let fat: Vec<Event> = std::iter::repeat_with(|| Event::claim(SourceId(0), TripleId(0)))
        .take(4000)
        .collect();
    strict.ingest(TenantId(0), &fat).unwrap();
    let mut saw_busy = false;
    for _ in 0..64 {
        strict
            .ingest(TenantId(0), &[Event::claim(SourceId(0), TripleId(1))])
            .unwrap();
    }
    match strict.sync() {
        Err(NetError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::Busy);
            saw_busy = true;
        }
        Ok(()) => {}
        Err(other) => panic!("unexpected {other:?}"),
    }
    assert!(saw_busy, "the flood should overflow the 1-slot queue");
    drop(strict);

    // A retrying client pushes the same flood through to completion.
    let mut retrying = Client::connect_with(
        &addr,
        ClientConfig::new()
            .with_busy_retries(1000, Duration::from_micros(200))
            .with_max_in_flight(1),
    )
    .unwrap();
    retrying.ingest(TenantId(0), &fat).unwrap();
    for _ in 0..32 {
        retrying
            .ingest(TenantId(0), &[Event::claim(SourceId(0), TripleId(1))])
            .unwrap();
    }
    retrying.flush().unwrap();
    assert_eq!(retrying.acked_batches(), 33);
    assert_eq!(retrying.scores(TenantId(0)).unwrap().len(), 2);

    handle.stop();
    join.join().unwrap().unwrap();
}

#[test]
fn shard_poisoning_maps_to_fatal_error_code() {
    // Empirical prior (alpha unpinned): relabelling the only true triple
    // to false degenerates the prior *after* the dataset mutated, which
    // poisons the shard.
    let mut fuser = FuserConfig::new(Method::PrecRec);
    fuser.alpha = None;
    let seeds = vec![(TenantId(0), seed(false)), (TenantId(1), seed(false))];
    let router = ShardRouter::new(fuser, RouterConfig::new(2), seeds).unwrap();
    let server = Server::bind("127.0.0.1:0", router, ServerConfig::new()).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let (handle, join) = spawn(server).unwrap();

    let mut client = Client::connect(&addr).unwrap();
    let healthy_before = client.scores(TenantId(1)).unwrap();
    client
        .ingest(TenantId(0), &[Event::label(TripleId(0), false)])
        .unwrap();
    client.flush().unwrap();

    // Ingest and queries against the poisoned shard carry the fatal
    // code — distinguishable from the retryable BUSY.
    client
        .ingest(TenantId(0), &[Event::claim(SourceId(0), TripleId(1))])
        .unwrap();
    match client.sync().unwrap_err() {
        NetError::Remote { code, message } => {
            assert_eq!(code, ErrorCode::ShardPoisoned);
            assert!(!code.is_retryable());
            assert!(message.contains("poisoned"), "{message}");
        }
        other => panic!("unexpected {other:?}"),
    }
    match client.scores(TenantId(0)).unwrap_err() {
        NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::ShardPoisoned),
        other => panic!("unexpected {other:?}"),
    }

    // Stats expose the poisoned flag; the sibling shard still serves
    // bit-identical scores.
    let stats = client.stats().unwrap();
    assert!(stats.shards.iter().any(|s| s.poisoned));
    let healthy_after = client.scores(TenantId(1)).unwrap();
    for (a, b) in healthy_before.iter().zip(&healthy_after) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    handle.stop();
    join.join().unwrap().unwrap();
}

#[test]
fn remote_shutdown_when_enabled() {
    let server = Server::bind(
        "127.0.0.1:0",
        router(1, &[0], RouterConfig::new(1)),
        ServerConfig::new().with_accept_shutdown(true),
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let (_handle, join) = spawn(server).unwrap();

    let mut client = Client::connect(&addr).unwrap();
    client
        .ingest(TenantId(0), &[Event::label(TripleId(1), true)])
        .unwrap();
    client.flush().unwrap();
    client.shutdown_server().unwrap();

    // The accepted batch was applied and the server wound down cleanly.
    let stats = join.join().unwrap().unwrap();
    let agg = stats.aggregate();
    assert_eq!(agg.ingest_errors, 0);
    assert_eq!(agg.ingested_events, 1);

    // New connections are refused (the listener is gone).
    assert!(Client::connect_with(
        &addr,
        ClientConfig::new().with_connect_retries(0, Duration::from_millis(1)),
    )
    .is_err());
}

#[test]
fn query_path_discards_dead_streams_and_redials() {
    // Regression: a transport error on the synchronous request path
    // must discard the dead stream and attempt a reconnect — a
    // read-only client (no ingest traffic to trigger the pipeline's
    // reconnect) would otherwise be wedged on the dead socket forever,
    // never exercising its connect retries.
    let server = Server::bind(
        "127.0.0.1:0",
        router(1, &[0], RouterConfig::new(1)),
        ServerConfig::new(),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let (handle, join) = spawn(server).unwrap();
    let mut client = Client::connect_with(
        addr.to_string(),
        ClientConfig::new().with_connect_retries(1, Duration::from_millis(5)),
    )
    .unwrap();
    client.ping().unwrap();

    // Kill the server under the connected client: the socket is dead
    // and the port is no longer listening.
    handle.stop();
    join.join().unwrap().unwrap();

    // The query must notice the dead stream and re-dial (surfacing the
    // typed retry exhaustion, not the raw socket error), and the next
    // call must re-dial again rather than reuse the dead socket.
    for _ in 0..2 {
        match client.scores(TenantId(0)).unwrap_err() {
            NetError::RetriesExhausted { attempts, .. } => assert_eq!(attempts, 2),
            other => panic!("expected retry exhaustion, got {other:?}"),
        }
    }
    assert!(client.reconnects() >= 2, "each failed query re-dials");
}

#[test]
fn stop_lands_with_idle_connections_at_capacity() {
    // Regression: with every accept-semaphore permit held by an idle
    // connection, `stop()` must still bring `serve()` down — the accept
    // loop re-checks the stop flag while waiting for a permit, and the
    // parked handlers are unblocked by the socket shutdown.
    let server = Server::bind(
        "127.0.0.1:0",
        router(1, &[0], RouterConfig::new(1)),
        ServerConfig::new().with_max_connections(1),
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let (handle, join) = spawn(server).unwrap();

    let mut idle = Client::connect(&addr).unwrap();
    idle.ping().unwrap(); // fully established, now parked in a read
    handle.stop();
    let stats = join.join().unwrap().unwrap();
    assert_eq!(stats.aggregate().ingest_errors, 0);
}

#[test]
fn reconnect_resends_unacked_batches() {
    let server = Server::bind(
        "127.0.0.1:0",
        router(1, &[0], RouterConfig::new(1)),
        ServerConfig::new(),
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let (handle, join) = spawn(server).unwrap();

    let mut client = Client::connect(&addr).unwrap();
    // Queue several pipelined batches, then yank the connection before
    // draining a single ack.
    client
        .ingest(
            TenantId(0),
            &[
                Event::add_triple("z", "p", "3"),
                Event::claim(SourceId(0), TripleId(2)),
            ],
        )
        .unwrap();
    client
        .ingest(TenantId(0), &[Event::label(TripleId(2), true)])
        .unwrap();
    client.disconnect();
    assert_eq!(client.in_flight(), 2);

    // The next barrier reconnects, resends both in order, and drains.
    client.flush().unwrap();
    assert_eq!(client.reconnects(), 1);
    assert_eq!(client.in_flight(), 0);
    let scores = client.scores(TenantId(0)).unwrap();
    assert_eq!(scores.len(), 3);

    handle.stop();
    let stats = join.join().unwrap().unwrap();
    // At-least-once: the server may have applied the first delivery and
    // the resend; duplicates must not error.
    assert_eq!(stats.aggregate().ingest_errors, 0);
}

#[test]
fn metrics_over_loopback() {
    use corrfuse_net::{WireMetric, WireMetricValue};
    use corrfuse_obs::Registry;
    use std::sync::Arc;

    // One registry shared by the router workers (stage histograms,
    // traces) and the server handlers (per-frame-type wire histograms).
    let registry = Arc::new(Registry::new());
    let server = Server::bind(
        "127.0.0.1:0",
        router(
            2,
            &[0, 1],
            RouterConfig::new(2).with_metrics(Arc::clone(&registry)),
        ),
        ServerConfig::new().with_metrics(Arc::clone(&registry)),
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let (handle, join) = spawn(server).unwrap();

    let mut client = Client::connect(&addr).unwrap();
    for round in 0..4u32 {
        client
            .ingest(
                TenantId(round % 2),
                &[
                    Event::add_triple("z", "p", format!("{round}")),
                    Event::claim(SourceId(0), TripleId(2 + round / 2)),
                ],
            )
            .unwrap();
    }
    client.flush().unwrap();

    let metrics = client.metrics().unwrap();
    assert!(!metrics.is_empty());
    assert!(
        metrics.windows(2).all(|w| w[0].name <= w[1].name),
        "METRICS entries arrive sorted by name"
    );
    let find = |name: &str| -> &WireMetric {
        metrics
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("metric {name} missing"))
    };

    // Router-derived series are always present, including the PR 5/6
    // serve-side-only stats the frozen STATS records cannot carry.
    match find("serve_ingested_events").value {
        WireMetricValue::Counter(v) => assert_eq!(v, 8),
        ref other => panic!("unexpected {other:?}"),
    }
    for name in [
        "serve_joint_delta_rows",
        "serve_joint_rescans",
        "serve_joint_memo_evictions",
        "serve_lift_pairs_sketch_pruned",
    ] {
        assert!(matches!(find(name).value, WireMetricValue::Counter(_)));
    }
    for shard in 0..2 {
        assert!(matches!(
            find(&format!("serve_queue_depth_shard_{shard}")).value,
            WireMetricValue::Gauge(_)
        ));
        assert!(matches!(
            find(&format!("serve_queue_high_water_shard_{shard}")).value,
            WireMetricValue::Gauge(_)
        ));
    }

    // Shard-pipeline stage histograms (router registry): the flush
    // barrier guarantees the batches were applied, so the ingest stage
    // has recorded and its quantiles read out.
    match &find("stream_ingest_ns").value {
        WireMetricValue::Histogram(h) => {
            assert!(h.count >= 1, "ingest histogram recorded");
            let snap = h.to_snapshot();
            assert!(snap.p50() <= snap.p99());
            assert!(snap.p99() <= snap.max);
            assert!(snap.max > 0);
        }
        other => panic!("unexpected {other:?}"),
    }

    // Wire-level per-frame-type histograms (server registry): the four
    // ingest requests each recorded a decode and a handle.
    for name in ["net_decode_ns_ingest", "net_handle_ns_ingest"] {
        match &find(name).value {
            WireMetricValue::Histogram(h) => assert!(h.count >= 4, "{name} count {}", h.count),
            other => panic!("unexpected {other:?}"),
        }
    }

    handle.stop();
    join.join().unwrap().unwrap();
}

#[test]
fn metrics_without_registry_still_answers() {
    let server = Server::bind(
        "127.0.0.1:0",
        router(1, &[0], RouterConfig::new(1)),
        ServerConfig::new(),
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let (handle, join) = spawn(server).unwrap();

    let mut client = Client::connect(&addr).unwrap();
    let metrics = client.metrics().unwrap();
    // No registry anywhere: only the router-derived series, still a
    // valid non-empty reply.
    assert!(metrics.iter().any(|m| m.name == "serve_batches"));
    assert!(!metrics.iter().any(|m| m.name.starts_with("net_")));

    handle.stop();
    join.join().unwrap().unwrap();
}
