//! Fuzz-style property tests for the wire codec: the decoder is total
//! (random bytes never panic, they produce typed errors), and
//! encode∘decode round-trips every frame and message type, including
//! under prefix truncation and single-bit corruption.

use corrfuse_core::dataset::SourceId;
use corrfuse_core::testkit::{run_cases, Gen};
use corrfuse_core::TripleId;
use corrfuse_net::wire::{WireHistogram, WireMetric, WireMetricValue, WireShardStats, WireStats};
use corrfuse_net::{
    AclTable, ErrorCode, Frame, FrameError, FrameType, Output, Request, Response, SessionConfig,
    SessionStateMachine,
};
use corrfuse_serve::TenantId;
use corrfuse_stream::Event;

fn random_bytes(g: &mut Gen, len: usize) -> Vec<u8> {
    (0..len).map(|_| g.u64_below(256) as u8).collect()
}

fn random_events(g: &mut Gen) -> Vec<Event> {
    let n = g.usize_in(0, 6);
    (0..n)
        .map(|_| match g.usize_in(0, 4) {
            0 => Event::add_source(format!("src-{}", g.u64_below(1000))),
            1 => Event::add_triple(
                format!("s\t{}", g.u64_below(50)),
                "p",
                format!("{}", g.u64_below(9)),
            ),
            2 => Event::claim(
                SourceId(g.u64_below(8) as u32),
                TripleId(g.u64_below(64) as u32),
            ),
            _ => Event::label(TripleId(g.u64_below(64) as u32), g.bool(0.5)),
        })
        .collect()
}

fn random_min_epoch(g: &mut Gen) -> Option<u64> {
    g.bool(0.5).then(|| g.u64_below(1 << 40))
}

fn random_credential(g: &mut Gen) -> Option<String> {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-_.";
    g.bool(0.5).then(|| {
        let len = g.usize_in(0, 24);
        (0..len)
            .map(|_| CHARS[g.usize_in(0, CHARS.len() - 1)] as char)
            .collect()
    })
}

fn random_request(g: &mut Gen) -> Request {
    match g.usize_in(0, 11) {
        0 => Request::Hello {
            min_version: g.u64_below(4) as u8,
            max_version: g.u64_below(4) as u8,
            credential: random_credential(g),
        },
        1 => Request::Ingest {
            tenant: TenantId(g.u64_below(1000) as u32),
            events: random_events(g),
        },
        2 => Request::Scores {
            tenant: TenantId(g.u64_below(1000) as u32),
            min_epoch: random_min_epoch(g),
        },
        3 => Request::Decisions {
            tenant: TenantId(g.u64_below(1000) as u32),
            min_epoch: random_min_epoch(g),
        },
        4 => Request::Flush,
        5 => Request::Stats {
            min_epoch: random_min_epoch(g),
        },
        6 => Request::Ping,
        7 => Request::Metrics,
        8 => Request::Subscribe {
            shard: g.u64_below(16) as u32,
            from_epoch: g.u64_below(1 << 40),
        },
        9 => Request::EpochAck {
            shard: g.u64_below(16) as u32,
            epoch: g.u64_below(1 << 40),
        },
        _ => Request::Shutdown,
    }
}

fn random_metrics(g: &mut Gen) -> Vec<WireMetric> {
    (0..g.usize_in(0, 5))
        .map(|i| WireMetric {
            name: format!("metric_{i}_{}", g.u64_below(100)),
            value: match g.usize_in(0, 3) {
                0 => WireMetricValue::Counter(g.u64_below(u64::MAX)),
                1 => WireMetricValue::Gauge(g.u64_below(u64::MAX) as i64),
                _ => WireMetricValue::Histogram(WireHistogram {
                    count: g.u64_below(1 << 40),
                    sum: g.u64_below(1 << 50),
                    max: g.u64_below(1 << 40),
                    buckets: (0..g.usize_in(0, 64))
                        .map(|_| g.u64_below(1 << 30))
                        .collect(),
                }),
            },
        })
        .collect()
}

fn random_response(g: &mut Gen) -> Response {
    use corrfuse_net::WireSubscriptionStart;
    match g.usize_in(0, 12) {
        0 => Response::HelloOk {
            version: g.u64_below(4) as u8,
        },
        1 => Response::IngestOk {
            seq: g.u64_below(u64::MAX),
        },
        2 => Response::ScoresOk {
            scores: {
                let n = g.usize_in(0, 8);
                g.vec_f64(n, 0.0, 1.0)
            },
        },
        3 => Response::DecisionsOk {
            decisions: (0..g.usize_in(0, 8)).map(|_| g.bool(0.5)).collect(),
        },
        4 => Response::FlushOk,
        5 => Response::StatsOk {
            stats: WireStats {
                conn_frames: g.u64_below(1 << 40),
                conn_batches: g.u64_below(1 << 30),
                conn_events: g.u64_below(1 << 40),
                shards: (0..g.usize_in(0, 4))
                    .map(|i| WireShardStats {
                        shard: i as u32,
                        tenants: g.u64_below(100) as u32,
                        processed_messages: g.u64_below(1 << 40),
                        ingested_events: g.u64_below(1 << 40),
                        ingest_errors: g.u64_below(1 << 20),
                        queue_depth: g.u64_below(1 << 16) as u32,
                        poisoned: g.bool(0.2),
                    })
                    .collect(),
            },
        },
        6 => Response::Pong,
        7 => Response::ShutdownOk,
        8 => Response::MetricsOk {
            metrics: random_metrics(g),
        },
        9 => Response::SubscribeOk {
            start: if g.bool(0.5) {
                WireSubscriptionStart::Resume
            } else {
                WireSubscriptionStart::Snapshot {
                    epoch: g.u64_below(1 << 40),
                    threshold: g.vec_f64(1, 0.0, 1.0)[0],
                    dataset: format!("#corrfuse v1\nS\tsrc-{}\n", g.u64_below(100)),
                }
            },
        },
        10 => Response::Batch {
            epoch: g.u64_below(1 << 40),
            text: corrfuse_stream::codec::encode_batch(&random_events(g)),
        },
        _ => Response::Error {
            code: ErrorCode::from_code(g.usize_in(1, 11) as u16).unwrap(),
            message: format!("error {}", g.u64_below(100)),
        },
    }
}

/// Random bytes never panic the frame decoder: every outcome is a
/// `Frame` or a typed `FrameError`. Messages decoded from surviving
/// frames also never panic.
#[test]
fn decoder_is_total_on_random_bytes() {
    run_cases("net_decoder_total", 300, |g| {
        let len = g.usize_in(0, 96);
        let buf = random_bytes(g, len);
        if let Ok((frame, used)) = Frame::decode(&buf) {
            assert!(used <= buf.len());
            // Message decoding over the surviving frame is total too.
            let _ = Request::from_frame(&frame);
            let _ = Response::from_frame(&frame);
        }
    });
}

/// Random bytes stamped with a valid header prefix (the adversarial
/// region is the length/CRC/payload) never panic either.
#[test]
fn decoder_is_total_on_magic_prefixed_bytes() {
    run_cases("net_decoder_magic_prefixed", 300, |g| {
        let len = g.usize_in(14, 80);
        let mut buf = random_bytes(g, len);
        buf[0..4].copy_from_slice(b"CRFN");
        if g.bool(0.8) {
            buf[4] = 1; // valid version
        }
        if g.bool(0.5) {
            // A known type code, so deeper fields get exercised.
            buf[5] = [
                0x01u8, 0x02, 0x03, 0x09, 0x0A, 0x0B, 0x82, 0x83, 0x86, 0x89, 0x8A, 0x8B, 0x8F,
            ][g.usize_in(0, 13)];
        }
        if let Ok((frame, _)) = Frame::decode(&buf) {
            let _ = Request::from_frame(&frame);
            let _ = Response::from_frame(&frame);
        }
    });
}

/// encode∘decode is the identity for every request and response,
/// through the byte level.
#[test]
fn messages_roundtrip_through_bytes() {
    run_cases("net_message_roundtrip", 150, |g| {
        let req = random_request(g);
        let bytes = req.to_frame().encode();
        let (frame, used) = Frame::decode(&bytes).expect("valid frame");
        assert_eq!(used, bytes.len());
        assert_eq!(Request::from_frame(&frame).expect("valid request"), req);

        let resp = random_response(g);
        let bytes = resp.to_frame().encode();
        let (frame, used) = Frame::decode(&bytes).expect("valid frame");
        assert_eq!(used, bytes.len());
        assert_eq!(Response::from_frame(&frame).expect("valid response"), resp);
    });
}

/// Every strict prefix of a valid frame reports `Truncated` (with the
/// bytes still needed), and any single corrupted byte yields a typed
/// error or — only when it hits don't-care payload bytes whose CRC
/// no longer matches — never a wrong frame.
#[test]
fn truncation_and_corruption_are_typed() {
    run_cases("net_truncation_corruption", 100, |g| {
        let req = random_request(g);
        let bytes = req.to_frame().encode();
        let cut = g.usize_in(0, bytes.len());
        match Frame::decode(&bytes[..cut]) {
            Err(FrameError::Truncated { needed, got }) => {
                assert_eq!(got, cut);
                assert!(needed > cut);
            }
            other => panic!("prefix of len {cut} decoded as {other:?}"),
        }

        // Flip one random byte: either the header check or the CRC
        // catches it — a flipped frame never decodes to the original.
        let mut corrupt = bytes.clone();
        let at = g.usize_in(0, corrupt.len());
        corrupt[at] ^= (1 + g.u64_below(255)) as u8;
        match Frame::decode(&corrupt) {
            Err(_) => {}
            Ok((frame, _)) => {
                assert_ne!(
                    frame.encode(),
                    bytes,
                    "corrupted byte {at} decoded back to the original"
                );
            }
        }
    });
}

/// A deterministic stand-in for the application layer, so the session
/// machine can be driven without a router: the response depends only on
/// the request, never on how the bytes were chunked.
fn canned_response(req: &Request) -> Response {
    match req {
        Request::Ingest { events, .. } => Response::IngestOk {
            seq: events.len() as u64,
        },
        Request::Scores { tenant, .. } => Response::ScoresOk {
            scores: vec![f64::from(tenant.0)],
        },
        Request::Decisions { .. } => Response::DecisionsOk {
            decisions: vec![true, false],
        },
        Request::Flush => Response::FlushOk,
        Request::Stats { .. } => Response::StatsOk {
            stats: WireStats {
                conn_frames: 1,
                conn_batches: 2,
                conn_events: 3,
                shards: vec![],
            },
        },
        Request::Ping => Response::Pong,
        Request::Metrics => Response::MetricsOk { metrics: vec![] },
        Request::Shutdown => Response::ShutdownOk,
        Request::Subscribe { shard, .. } => Response::Error {
            code: ErrorCode::Internal,
            message: format!("no shard {shard}"),
        },
        other => Response::Error {
            code: ErrorCode::Malformed,
            message: format!("{other:?}"),
        },
    }
}

/// Feed `bytes` into a fresh session machine in the given chunk sizes
/// (cycled; empty = one whole-buffer feed), answering every emitted App
/// with the canned response. Returns everything observable: the app
/// request sequence, the concatenated wire bytes, the frame count and
/// whether the session closed.
fn drive_session(
    config: SessionConfig,
    bytes: &[u8],
    splits: &[usize],
) -> (Vec<Request>, Vec<u8>, u64, bool) {
    let mut sm = SessionStateMachine::new(config);
    let mut apps = Vec::new();
    let mut wire = Vec::new();
    let mut pos = 0;
    let mut turn = 0;
    while pos < bytes.len() {
        let n = if splits.is_empty() {
            bytes.len() - pos
        } else {
            splits[turn % splits.len()].clamp(1, bytes.len() - pos)
        };
        turn += 1;
        sm.feed(&bytes[pos..pos + n]);
        pos += n;
        while let Some(out) = sm.pop_output() {
            match out {
                Output::Write(b) => wire.extend_from_slice(&b),
                Output::Close => {}
                Output::App { request, .. } => {
                    let resp = canned_response(&request);
                    apps.push(request);
                    sm.respond(resp);
                }
            }
        }
    }
    (apps, wire, sm.frames(), sm.is_closed())
}

/// The session machine is chunking-blind: a recorded byte stream fed
/// one byte (or any random split) at a time produces exactly the app
/// requests, wire bytes, frame count and close decision of a single
/// whole-buffer feed. This is the sans-I/O property both server back
/// ends lean on — the kernel may fragment however it likes.
#[test]
fn session_machine_is_chunking_blind() {
    run_cases("net_session_chunking", 150, |g| {
        // A recorded client stream: HELLO (occasionally bad), then a
        // burst of random requests, occasionally trailed by garbage.
        let mut bytes = Vec::new();
        if g.bool(0.85) {
            bytes.extend(
                Request::Hello {
                    min_version: 1,
                    max_version: g.usize_in(1, 2) as u8,
                    credential: random_credential(g),
                }
                .to_frame()
                .encode(),
            );
        }
        for _ in 0..g.usize_in(0, 6) {
            bytes.extend(random_request(g).to_frame().encode());
        }
        if g.bool(0.2) {
            let garbage_len = g.usize_in(1, 40);
            bytes.extend(random_bytes(g, garbage_len));
        }
        if bytes.is_empty() {
            return;
        }

        let mut config = SessionConfig::new().with_accept_shutdown(g.bool(0.5));
        if g.bool(0.4) {
            config = config.with_acl(std::sync::Arc::new(
                AclTable::new()
                    .allow_all("root")
                    .allow("writer", [TenantId(0), TenantId(1)]),
            ));
        }

        let whole = drive_session(config.clone(), &bytes, &[]);
        let splits: Vec<usize> = if g.bool(0.3) {
            vec![1] // strict byte-at-a-time
        } else {
            (0..g.usize_in(1, 8)).map(|_| g.usize_in(1, 9)).collect()
        };
        let chunked = drive_session(config, &bytes, &splits);
        assert_eq!(
            whole.0, chunked.0,
            "app sequence differs (splits {splits:?})"
        );
        assert_eq!(whole.1, chunked.1, "wire bytes differ (splits {splits:?})");
        assert_eq!(whole.2, chunked.2, "frame count differs");
        assert_eq!(whole.3, chunked.3, "close decision differs");
    });
}

/// The 23 frame types cover requests and responses disjointly, and
/// every code survives the `u8` round trip.
#[test]
fn frame_type_codes_are_stable() {
    for t in FrameType::ALL {
        assert_eq!(FrameType::from_code(t as u8), Some(t));
    }
    let requests = FrameType::ALL.iter().filter(|t| !t.is_response()).count();
    assert_eq!(requests, 11);
    assert_eq!(FrameType::ALL.len() - requests, 12);
}
