//! Integration tests for the readiness-reactor back end
//! (`ServerConfig::reactor(true)`): request-surface parity with the
//! thread back end, slow-loris robustness (a dribbling or stalled
//! connection never starves the others and pins no memory beyond the
//! bytes it actually sent), and per-tenant ACL enforcement on both back
//! ends — including that a mixed-tenant client hitting a denied tenant
//! cannot poison its allowed-tenant pipeline.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use corrfuse_core::dataset::{DatasetBuilder, SourceId};
use corrfuse_core::fuser::{FuserConfig, Method};
use corrfuse_core::TripleId;
use corrfuse_net::server::spawn;
use corrfuse_net::{
    AclTable, Client, ClientConfig, ErrorCode, Frame, NetError, Request, Response, Server,
    ServerConfig,
};
use corrfuse_serve::{RouterConfig, ShardRouter, TenantId};
use corrfuse_stream::Event;

fn seed() -> corrfuse_core::dataset::Dataset {
    let mut b = DatasetBuilder::new();
    let (s, t1) = b.observe_named("A", "x", "p", "1");
    b.label(t1, true);
    let t2 = b.triple("y", "p", "2");
    b.observe(s, t2);
    b.label(t2, false);
    b.build().unwrap()
}

fn router(tenants: &[u32]) -> ShardRouter {
    let seeds = tenants.iter().map(|&t| (TenantId(t), seed())).collect();
    ShardRouter::new(
        FuserConfig::new(Method::PrecRec),
        RouterConfig::new(tenants.len()).with_threshold(0.5),
        seeds,
    )
    .unwrap()
}

fn read_response(stream: &mut TcpStream) -> Response {
    let frame = Frame::read_from(stream).unwrap().expect("peer closed");
    Response::from_frame(&frame).unwrap()
}

fn raw_hello(stream: &mut TcpStream, credential: Option<&str>) -> Response {
    Request::Hello {
        min_version: 1,
        max_version: 1,
        credential: credential.map(str::to_string),
    }
    .to_frame()
    .write_to(stream)
    .unwrap();
    stream.flush().unwrap();
    read_response(stream)
}

/// The reactor back end serves the same request surface as the thread
/// back end: ingest, read-your-writes flush, scores/decisions, stats,
/// ping, typed errors, remote shutdown.
#[test]
fn reactor_serves_full_request_surface() {
    let server = Server::bind(
        "127.0.0.1:0",
        router(&[0, 1]),
        ServerConfig::new().reactor(true).with_accept_shutdown(true),
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let (_handle, join) = spawn(server).unwrap();

    let mut client = Client::connect(&addr).unwrap();
    client.ping().unwrap();
    client
        .ingest(
            TenantId(0),
            &[
                Event::add_triple("z", "p", "3"),
                Event::claim(SourceId(0), TripleId(2)),
            ],
        )
        .unwrap();
    client
        .ingest(TenantId(1), &[Event::label(TripleId(1), true)])
        .unwrap();
    client.flush().unwrap();
    assert_eq!(client.acked_batches(), 2);

    let scores = client.scores(TenantId(0)).unwrap();
    assert_eq!(scores.len(), 3);
    let decisions = client.decisions(TenantId(0)).unwrap();
    for (s, d) in scores.iter().zip(&decisions) {
        assert_eq!(*d, *s > 0.5);
    }
    match client.scores(TenantId(9)).unwrap_err() {
        NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::UnknownTenant),
        other => panic!("unexpected {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.conn_batches, 2);
    assert_eq!(stats.conn_events, 3);

    // Remote shutdown stops the reactor and yields the final stats.
    client.shutdown_server().unwrap();
    let stats = join.join().unwrap().unwrap();
    assert_eq!(stats.aggregate().ingest_errors, 0);
    assert_eq!(stats.aggregate().ingested_events, 3);
}

/// Slow-loris robustness: connections that dribble one byte at a time —
/// or declare a 64 MiB payload and stall mid-frame — keep their session
/// buffers bounded by the bytes actually received, and never starve a
/// well-behaved client sharing the one reactor thread.
#[test]
fn slow_loris_never_starves_the_reactor() {
    let server = Server::bind(
        "127.0.0.1:0",
        router(&[0]),
        ServerConfig::new().reactor(true),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let (handle, join) = spawn(server).unwrap();

    // Staller: completes the handshake, then sends only the header of
    // an INGEST frame declaring the maximum payload — and goes silent.
    let mut staller = TcpStream::connect(addr).unwrap();
    assert!(matches!(
        raw_hello(&mut staller, None),
        Response::HelloOk { .. }
    ));
    let mut header = Vec::new();
    header.extend_from_slice(b"CRFN");
    header.push(1); // version
    header.push(0x02); // INGEST
    header.extend_from_slice(&corrfuse_net::frame::MAX_PAYLOAD.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    staller.write_all(&header).unwrap();
    staller.flush().unwrap();

    // Dribblers: a full PING request delivered one byte per write.
    let dribblers: Vec<_> = (0..4)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_nodelay(true).unwrap();
            assert!(matches!(raw_hello(&mut s, None), Response::HelloOk { .. }));
            s
        })
        .collect();
    let ping = Request::Ping.to_frame().encode();
    let driblet = std::thread::spawn(move || {
        let mut dribblers = dribblers;
        for i in 0..ping.len() {
            for s in &mut dribblers {
                s.write_all(&ping[i..i + 1]).unwrap();
                s.flush().unwrap();
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        for s in &mut dribblers {
            assert!(matches!(read_response(s), Response::Pong));
        }
    });

    // Meanwhile a well-behaved client must make full round trips.
    let mut client = Client::connect(addr.to_string()).unwrap();
    for _ in 0..20 {
        client
            .ingest(TenantId(0), &[Event::label(TripleId(0), true)])
            .unwrap();
        client.flush().unwrap();
        assert_eq!(client.scores(TenantId(0)).unwrap().len(), 2);
    }
    driblet.join().unwrap();

    drop(staller);
    handle.stop();
    let stats = join.join().unwrap().unwrap();
    assert_eq!(stats.aggregate().ingest_errors, 0);
}

/// ACL enforcement is identical on both back ends: missing or wrong
/// credentials get `FORBIDDEN` on every tenant-scoped request (the
/// connection keeps serving), the right credential round-trips, a
/// scoped credential cannot `SUBSCRIBE`, and a mixed-tenant client
/// hitting a denied tenant cannot poison its allowed-tenant pipeline —
/// the allowed tenant's scores stay bitwise identical to a control
/// server that only ever saw the allowed traffic.
#[test]
fn acl_is_enforced_on_both_backends() {
    for reactor in [false, true] {
        let acl = AclTable::new()
            .allow("writer-0", [TenantId(0)])
            .allow_all("root");
        let server = Server::bind(
            "127.0.0.1:0",
            router(&[0, 1]),
            ServerConfig::new().reactor(reactor).with_acl(acl),
        )
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let (handle, join) = spawn(server).unwrap();

        // Control: an open server that only ever receives the allowed
        // traffic; the ACL'd server's allowed tenant must match it
        // bitwise.
        let control = Server::bind("127.0.0.1:0", router(&[0, 1]), ServerConfig::new()).unwrap();
        let control_addr = control.local_addr().unwrap().to_string();
        let (control_handle, control_join) = spawn(control).unwrap();

        // Missing and wrong credentials: HELLO_OK, then FORBIDDEN on
        // every tenant-scoped request; PING (unscoped) still works.
        for config in [
            ClientConfig::new(),
            ClientConfig::new().with_credential("intruder"),
        ] {
            let mut denied = Client::connect_with(&addr, config).unwrap();
            denied.ping().unwrap();
            for tenant in [0u32, 1] {
                match denied.scores(TenantId(tenant)).unwrap_err() {
                    NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::Forbidden),
                    other => panic!("unexpected {other:?}"),
                }
                match denied.decisions(TenantId(tenant)).unwrap_err() {
                    NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::Forbidden),
                    other => panic!("unexpected {other:?}"),
                }
                denied
                    .ingest(TenantId(tenant), &[Event::label(TripleId(0), true)])
                    .unwrap();
                match denied.sync().unwrap_err() {
                    NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::Forbidden),
                    other => panic!("unexpected {other:?}"),
                }
            }
            // The connection is still alive after every denial.
            denied.ping().unwrap();
        }

        // A scoped credential cannot subscribe (whole-shard access).
        let mut raw = TcpStream::connect(&addr).unwrap();
        assert!(matches!(
            raw_hello(&mut raw, Some("writer-0")),
            Response::HelloOk { .. }
        ));
        Request::Subscribe {
            shard: 0,
            from_epoch: 0,
        }
        .to_frame()
        .write_to(&mut raw)
        .unwrap();
        raw.flush().unwrap();
        match read_response(&mut raw) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Forbidden),
            other => panic!("unexpected {other:?}"),
        }
        drop(raw);

        // Mixed-tenant client: allowed tenant round-trips, denied
        // tenant is refused, and the denial does not perturb the
        // allowed pipeline.
        let mut writer =
            Client::connect_with(&addr, ClientConfig::new().with_credential("writer-0")).unwrap();
        let mut control_client = Client::connect(&control_addr).unwrap();
        let batches: [&[Event]; 3] = [
            &[
                Event::add_triple("z", "p", "3"),
                Event::claim(SourceId(0), TripleId(2)),
            ],
            &[Event::label(TripleId(2), true)],
            &[Event::claim(SourceId(0), TripleId(1))],
        ];
        for (i, batch) in batches.iter().enumerate() {
            writer.ingest(TenantId(0), batch).unwrap();
            control_client.ingest(TenantId(0), batch).unwrap();
            if i == 1 {
                // Interleave a denied-tenant batch mid-pipeline.
                writer
                    .ingest(TenantId(1), &[Event::label(TripleId(0), false)])
                    .unwrap();
                match writer.sync().unwrap_err() {
                    NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::Forbidden),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        writer.flush().unwrap();
        control_client.flush().unwrap();
        let scores = writer.scores(TenantId(0)).unwrap();
        let control_scores = control_client.scores(TenantId(0)).unwrap();
        assert_eq!(
            scores, control_scores,
            "denied-tenant traffic perturbed the allowed pipeline (reactor={reactor})"
        );
        // The denied tenant never received the batch.
        match writer.scores(TenantId(1)).unwrap_err() {
            NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::Forbidden),
            other => panic!("unexpected {other:?}"),
        }

        handle.stop();
        control_handle.stop();
        let stats = join.join().unwrap().unwrap();
        let control_stats = control_join.join().unwrap().unwrap();
        assert_eq!(
            stats.aggregate().ingested_events,
            control_stats.aggregate().ingested_events,
            "denied batches must never reach the router (reactor={reactor})"
        );
    }
}
