//! # corrfuse-synth
//!
//! Synthetic data generation for correlation-aware data fusion:
//!
//! * [`motivating`] — the paper's Figure 1 example, exactly;
//! * [`generator`] — parametric worlds with controlled per-source
//!   precision/recall and positive/complementary correlation groups
//!   (drives the Figure 6/7 experiments);
//! * [`replicas`] — statistical twins of the REVERB, RESTAURANT and BOOK
//!   datasets (drives the Figure 4/5 experiments; see DESIGN.md §5 for the
//!   substitution rationale);
//! * [`stream_events`] — slices a generated world into a seed snapshot
//!   plus ingest-event micro-batches (drives the `corrfuse-stream`
//!   equivalence tests and throughput bench);
//! * [`churn`] — adversarial label-churn batches over a full world
//!   (labels flipping back and forth, claims shifting provider sets;
//!   drives the incremental-core equivalence property and the
//!   `joint_incremental` bench);
//! * [`multi_tenant`] — interleaved per-tenant event streams with
//!   Zipf-skewed tenant sizes (drives the `corrfuse-serve` router tests
//!   and benches);
//! * [`remote`] — per-producer connection scripts (sends + forced
//!   reconnects) over a multi-tenant stream (drives the `corrfuse-net`
//!   loopback tests and the `net_throughput` bench);
//! * [`wide_world`] — many sources partitioned into narrow domains with
//!   one planted correlation clique per domain (drives the sparse
//!   lift-graph / sketch-tier scaling tests and the `wide_world` bench);
//! * [`follower`] — a multi-tenant workload plus a deterministic
//!   replication-fault schedule (disconnects, journal rotations, follower
//!   cold restarts; drives the `corrfuse-replica` equivalence suite and
//!   the `replica_read_scaling` bench);
//! * [`migration`] — a multi-tenant workload plus a deterministic
//!   tenant-migration chaos schedule (live migrations, crash-aborted
//!   migrations, journal rotations, duplicate ingest bursts; drives the
//!   `corrfuse-serve` migration equivalence suite).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod churn;
pub mod follower;
pub mod generator;
pub mod migration;
pub mod motivating;
pub mod multi_tenant;
pub mod remote;
pub mod replicas;
pub mod stream_events;
pub mod wide_world;

pub use churn::{label_churn_stream, ChurnSpec};
pub use follower::{follower_scenario, Fault, FollowerScenario, FollowerScenarioSpec};
pub use generator::{generate, GroupKind, GroupSpec, Polarity, SourceSpec, SynthSpec};
pub use migration::{migration_scenario, MigrationFault, MigrationScenario, MigrationScenarioSpec};
pub use multi_tenant::{multi_tenant_events, MultiTenantSpec, MultiTenantStream};
pub use remote::{
    remote_producer_scripts, ProducerAction, ProducerScript, RemoteSpec, RemoteWorkload,
};
pub use stream_events::{event_stream, StreamSpec};
pub use wide_world::{wide_world, WideWorldSpec};

use corrfuse_core::error::{FusionError, Result};

/// Validate a fraction parameter in `(0, 1)`.
pub(crate) fn check_fraction(what: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && value > 0.0 && value < 1.0 {
        Ok(value)
    } else {
        Err(FusionError::InvalidProbability { what, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_validation() {
        assert!(check_fraction("f", 0.5).is_ok());
        assert!(check_fraction("f", 0.0).is_err());
        assert!(check_fraction("f", 1.0).is_err());
        assert!(check_fraction("f", f64::NAN).is_err());
    }
}
