//! The paper's motivating example (Figure 1): ten knowledge triples about
//! Barack Obama as extracted by five extraction systems.
//!
//! This tiny dataset reproduces every worked number in the paper —
//! Figure 1b's per-source and joint quality, Figure 1c's voting results,
//! Examples 3.3 / 4.4 / 4.7 / 4.10 — and is the canonical smoke-test input
//! for all models.

use corrfuse_core::dataset::{Dataset, DatasetBuilder};
use corrfuse_core::triple::TripleId;

/// Rows of Figure 1a: (predicate, object, truth, providers 1-based).
const ROWS: [(&str, &str, bool, &[usize]); 10] = [
    ("profession", "president", true, &[1, 2, 4, 5]),
    ("died", "1982", false, &[1, 2]),
    ("profession", "lawyer", true, &[3]),
    ("religion", "Christian", true, &[2, 3, 4, 5]),
    ("age", "50", false, &[2, 3]),
    ("support", "White Sox", true, &[1, 4, 5]),
    ("spouse", "Michelle", true, &[1, 2, 3]),
    ("administered by", "John G. Roberts", false, &[1, 2, 4, 5]),
    ("surgical operation", "05/01/2011", false, &[1, 2, 4, 5]),
    ("profession", "community organizer", true, &[1, 3, 4, 5]),
];

/// Build the Figure 1 dataset: 5 extractors, 10 triples (6 true, 4 false),
/// with the gold labels attached.
pub fn figure1() -> Dataset {
    let mut b = DatasetBuilder::new();
    let sources: Vec<_> = (1..=5).map(|i| b.source(format!("S{i}"))).collect();
    for (predicate, object, truth, providers) in ROWS {
        let t = b.triple("Obama", predicate, object);
        for &p in providers {
            b.observe(sources[p - 1], t);
        }
        b.label(t, truth);
    }
    b.build().expect("figure 1 dataset is well-formed")
}

/// Triple ids of Figure 1 in paper order (`t1` is `ids()[0]`).
pub fn ids() -> [TripleId; 10] {
    std::array::from_fn(|i| TripleId(i as u32))
}

/// The paper's short names `t1..t10` for display.
pub fn triple_name(t: TripleId) -> String {
    format!("t{}", t.0 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_core::quality::QualityEstimator;

    #[test]
    fn shape_matches_figure_1a() {
        let ds = figure1();
        assert_eq!(ds.n_sources(), 5);
        assert_eq!(ds.n_triples(), 10);
        let gold = ds.gold().unwrap();
        assert_eq!(gold.true_count(), 6);
        assert_eq!(gold.false_count(), 4);
        // O1 = {t1, t2, t6, t7, t8, t9, t10} (Example 2.1).
        let s1 = ds.source_by_name("S1").unwrap();
        let o1: Vec<u32> = ds.output(s1).iter().map(|t| t.0 + 1).collect();
        assert_eq!(o1, vec![1, 2, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn quality_matches_figure_1b() {
        let ds = figure1();
        let q = QualityEstimator::new()
            .estimate(&ds, ds.gold().unwrap())
            .unwrap();
        let expect = [
            (0.57, 0.67),
            (0.43, 0.5),
            (0.8, 0.67),
            (0.67, 0.67),
            (0.67, 0.67),
        ];
        for (i, (p, r)) in expect.iter().enumerate() {
            assert!((q[i].precision - p).abs() < 0.01, "S{}", i + 1);
            assert!((q[i].recall - r).abs() < 0.01, "S{}", i + 1);
        }
    }

    #[test]
    fn triple_names() {
        assert_eq!(triple_name(TripleId(0)), "t1");
        assert_eq!(triple_name(TripleId(9)), "t10");
        assert_eq!(ids()[3], TripleId(3));
    }

    #[test]
    fn content_is_the_obama_page() {
        let ds = figure1();
        let t = ds.triple(TripleId(0));
        assert_eq!(t.subject, "Obama");
        assert_eq!(t.object, "president");
    }
}
