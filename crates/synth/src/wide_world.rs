//! Wide-world generator: many sources partitioned into narrow domains,
//! with one planted correlation group per domain.
//!
//! The paper's experiments live at ~20 sources; the wide-world workload
//! models the regime the sparse lift graph and sketch tier exist for —
//! 10³–10⁵ sources where almost every source pair shares no scope and
//! almost every co-scoped pair is uncorrelated. Sources are chunked into
//! consecutive blocks of [`WideWorldSpec::sources_per_domain`], each
//! block providing in its own [`Domain`] only, so the co-scoped pair
//! count grows linearly in sources (blocks × C(width, 2)) rather than
//! quadratically.
//!
//! Within every block, the first [`WideWorldSpec::group_size`] sources
//! form a planted clique: they all provide exactly the same quarter of
//! the block's false triples, giving each clique pair a false-side lift
//! of ~4 (`n11·total / (na·nb)` with `n11 = na = nb = total/4`).
//! Every other provision is an independent coin flip, so non-clique
//! pairs sit at lift ~1 and fall below any threshold comfortably above
//! the sampling noise (`σ(ln lift) ≈ 2/√n_false`). A pruning tier that
//! admits only above-threshold pairs should therefore track close to
//! `blocks × C(group_size, 2)` pairs.
//!
//! All triples are gold-labelled (half true, half false per block): the
//! lift machinery only sees labelled triples, and leaving some
//! unlabelled would just shrink the effective world.

use corrfuse_core::dataset::{Dataset, DatasetBuilder, Domain};
use corrfuse_core::error::{FusionError, Result};
use corrfuse_core::rng::StdRng;

/// Parameters of a wide world. Construct with [`WideWorldSpec::new`] and
/// adjust via the `with_*` builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideWorldSpec {
    /// Total source count (the scaling axis).
    pub n_sources: usize,
    /// Sources per domain block (the "width" of each narrow domain).
    pub sources_per_domain: usize,
    /// Planted-clique size per block (capped at the block width).
    pub group_size: usize,
    /// Labelled triples per block, split half true / half false.
    pub triples_per_domain: usize,
    /// RNG seed for the independent coin-flip provisions.
    pub seed: u64,
}

impl WideWorldSpec {
    /// Defaults: 10-source domains, 3-source planted cliques, 64 triples
    /// per domain (32 true / 32 false — false-side lift noise
    /// `σ ≈ 2/√32 ≈ 0.35`, well under the planted `ln 4 ≈ 1.39`).
    pub fn new(n_sources: usize) -> WideWorldSpec {
        WideWorldSpec {
            n_sources,
            sources_per_domain: 10,
            group_size: 3,
            triples_per_domain: 64,
            seed: 0x5eed,
        }
    }

    /// Set the domain width.
    pub fn with_sources_per_domain(mut self, width: usize) -> WideWorldSpec {
        self.sources_per_domain = width;
        self
    }

    /// Set the planted-clique size.
    pub fn with_group_size(mut self, size: usize) -> WideWorldSpec {
        self.group_size = size;
        self
    }

    /// Set the labelled triples per domain.
    pub fn with_triples_per_domain(mut self, triples: usize) -> WideWorldSpec {
        self.triples_per_domain = triples;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> WideWorldSpec {
        self.seed = seed;
        self
    }

    /// Number of domain blocks this spec produces.
    pub fn n_domains(&self) -> usize {
        self.n_sources.div_ceil(self.sources_per_domain)
    }

    /// Planted above-threshold pairs: one clique of `group_size` per
    /// full-width block (a trailing short block plants what fits).
    pub fn planted_pairs(&self) -> usize {
        let pairs_of = |g: usize| g * g.saturating_sub(1) / 2;
        let full = self.n_sources / self.sources_per_domain;
        let rest = self.n_sources % self.sources_per_domain;
        full * pairs_of(self.group_size) + pairs_of(self.group_size.min(rest))
    }

    fn validate(&self) -> Result<()> {
        if self.n_sources == 0 {
            return Err(FusionError::DegenerateTraining("any"));
        }
        if self.sources_per_domain < 2 || self.group_size < 2 {
            return Err(FusionError::DegenerateTraining("pair"));
        }
        if self.group_size > self.sources_per_domain {
            return Err(FusionError::DegenerateTraining("clique member"));
        }
        if self.triples_per_domain < 8 {
            return Err(FusionError::DegenerateTraining("per-domain"));
        }
        Ok(())
    }
}

/// Generate the wide world described by `spec`. Deterministic in the
/// spec (including its seed).
pub fn wide_world(spec: &WideWorldSpec) -> Result<Dataset> {
    spec.validate()?;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = DatasetBuilder::new();
    let sources: Vec<_> = (0..spec.n_sources)
        .map(|i| b.source(format!("S{i}")))
        .collect();

    let n_true = spec.triples_per_domain / 2;
    let n_false = spec.triples_per_domain - n_true;
    // The clique co-provides the first quarter of each block's false
    // triples (≥ 2 so a lift is defined even at the minimum spec).
    let shared = (n_false / 4).max(2).min(n_false);

    for (d, block) in sources.chunks(spec.sources_per_domain).enumerate() {
        let domain = Domain(d as u32);
        let clique = spec.group_size.min(block.len());
        let mut triples = Vec::with_capacity(spec.triples_per_domain);
        for j in 0..spec.triples_per_domain {
            let t = b.triple(format!("d{d}e{j}"), "p", "v");
            b.set_domain(t, domain);
            b.label(t, j < n_true);
            triples.push(t);
        }
        let mut provided = vec![false; triples.len()];
        for (i, &s) in block.iter().enumerate() {
            for (j, &t) in triples.iter().enumerate() {
                let is_false = j >= n_true;
                let observe = if i < clique && is_false {
                    // Clique members provide exactly the shared subset of
                    // false triples — nothing else on the false side.
                    j - n_true < shared
                } else {
                    rng.gen_bool(0.5)
                };
                if observe {
                    b.observe(s, t);
                    provided[j] = true;
                }
            }
        }
        // `DatasetBuilder::build` rejects provider-less triples; back-fill
        // the coin-flip stragglers with a rotating block member.
        for (j, &t) in triples.iter().enumerate() {
            if !provided[j] {
                b.observe(block[j % block.len()], t);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_core::cluster::{pairwise_correlations, ClusterConfig};

    #[test]
    fn spec_validation() {
        assert!(wide_world(&WideWorldSpec::new(0)).is_err());
        assert!(wide_world(&WideWorldSpec::new(10).with_group_size(1)).is_err());
        assert!(wide_world(&WideWorldSpec::new(10).with_group_size(11)).is_err());
        assert!(wide_world(&WideWorldSpec::new(10).with_triples_per_domain(4)).is_err());
        assert!(wide_world(&WideWorldSpec::new(10)).is_ok());
    }

    #[test]
    fn world_shape_matches_spec() {
        let spec = WideWorldSpec::new(25).with_sources_per_domain(10);
        let ds = wide_world(&spec).unwrap();
        assert_eq!(ds.n_sources(), 25);
        assert_eq!(spec.n_domains(), 3);
        assert_eq!(ds.n_triples(), 3 * spec.triples_per_domain);
        let gold = ds.gold().unwrap();
        assert_eq!(gold.labelled_count(), ds.n_triples());
        assert_eq!(gold.true_count(), 3 * (spec.triples_per_domain / 2));
        // Each block's sources provide (and therefore scope) only their
        // own domain.
        for s in ds.sources() {
            let expect = Domain((s.index() / spec.sources_per_domain) as u32);
            assert_eq!(ds.scope(s).iter().copied().collect::<Vec<_>>(), [expect]);
        }
        assert_eq!(spec.planted_pairs(), 2 * 3 + 3);
    }

    #[test]
    fn planted_cliques_dominate_above_threshold_pairs() {
        let spec = WideWorldSpec::new(40).with_sources_per_domain(8);
        let ds = wide_world(&spec).unwrap();
        let cfg = ClusterConfig {
            ln_threshold: 2.5f64.ln(),
            ..ClusterConfig::default()
        };
        let pairs = pairwise_correlations(&ds, ds.gold().unwrap(), &cfg).unwrap();
        let above: Vec<_> = pairs
            .iter()
            .filter(|p| p.strength() >= cfg.ln_threshold)
            .collect();
        // Every planted clique pair is above threshold...
        for d in 0..spec.n_domains() {
            let base = d * spec.sources_per_domain;
            for a in 0..spec.group_size {
                for b in a + 1..spec.group_size {
                    assert!(
                        above
                            .iter()
                            .any(|p| p.a.index() == base + a && p.b.index() == base + b),
                        "clique pair ({},{}) below threshold",
                        base + a,
                        base + b
                    );
                }
            }
        }
        // ...and noise admits stay a small minority.
        assert!(
            above.len() <= 2 * spec.planted_pairs(),
            "noise pairs dominate: {} above threshold vs {} planted",
            above.len(),
            spec.planted_pairs()
        );
    }
}
