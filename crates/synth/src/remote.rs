//! Remote-producer workloads for the network front door
//! (`corrfuse-net`).
//!
//! [`remote_producer_scripts`] turns a multi-tenant interleaved stream
//! ([`crate::multi_tenant_events`]) into per-*producer* connection
//! scripts: each producer is one remote client owning a disjoint set of
//! tenants, sending its tenants' micro-batches in arrival order and —
//! the part that makes the workload adversarial — dropping and
//! re-establishing its connection mid-stream at deterministic points.
//! Tenant ownership is `tenant % n_producers`, so every tenant's batch
//! order is preserved within its producer's script (the ordering the
//! wire protocol guarantees per connection).
//!
//! The scripts drive the end-to-end trust-anchor test
//! (`tests/net_equivalence.rs`): replaying every script through real
//! TCP clients, reconnects included, must leave each shard bitwise
//! identical to a from-scratch fit.

use corrfuse_core::dataset::Dataset;
use corrfuse_core::error::{FusionError, Result};
use corrfuse_stream::Event;

use crate::multi_tenant::{multi_tenant_events, MultiTenantSpec};

/// One step of a producer's connection script.
#[derive(Debug, Clone, PartialEq)]
pub enum ProducerAction {
    /// Send one tenant-scoped micro-batch over the live connection.
    Send {
        /// The tenant the batch belongs to.
        tenant: u32,
        /// The batch, in tenant-local ids.
        events: Vec<Event>,
    },
    /// Drop the TCP connection and reconnect before the next send
    /// (exercising the client's resend-on-reconnect path).
    Reconnect,
}

/// One remote producer's scripted session.
#[derive(Debug, Clone, PartialEq)]
pub struct ProducerScript {
    /// Producer index (`0..n_producers`).
    pub producer: usize,
    /// The actions, in order.
    pub actions: Vec<ProducerAction>,
}

impl ProducerScript {
    /// Number of `Send` actions.
    pub fn n_sends(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, ProducerAction::Send { .. }))
            .count()
    }

    /// Number of forced reconnects.
    pub fn n_reconnects(&self) -> usize {
        self.actions.len() - self.n_sends()
    }
}

/// Specification of a remote-producer workload.
#[derive(Debug, Clone)]
pub struct RemoteSpec {
    /// The underlying multi-tenant stream.
    pub tenants: MultiTenantSpec,
    /// Number of producer connections; tenants are assigned by
    /// `tenant % n_producers`.
    pub n_producers: usize,
    /// Force a reconnect after every `n` sends of a producer (`None` =
    /// stable connections).
    pub reconnect_every: Option<usize>,
}

impl RemoteSpec {
    /// A workload with `n_producers` producers over the given tenant
    /// stream, reconnecting every 3 sends.
    pub fn new(tenants: MultiTenantSpec, n_producers: usize) -> RemoteSpec {
        RemoteSpec {
            tenants,
            n_producers,
            reconnect_every: Some(3),
        }
    }
}

/// A generated remote workload: the per-tenant seeds (to build the
/// router from) plus one script per producer.
#[derive(Debug, Clone)]
pub struct RemoteWorkload {
    /// Per-tenant seed snapshots, in tenant-id order.
    pub seeds: Vec<(u32, Dataset)>,
    /// One script per producer, in producer order. Producers whose
    /// tenant set is empty get an empty script.
    pub scripts: Vec<ProducerScript>,
}

impl RemoteWorkload {
    /// Total events across all scripts.
    pub fn n_events(&self) -> usize {
        self.scripts
            .iter()
            .flat_map(|s| &s.actions)
            .map(|a| match a {
                ProducerAction::Send { events, .. } => events.len(),
                ProducerAction::Reconnect => 0,
            })
            .sum()
    }
}

/// Generate per-producer connection scripts over a multi-tenant stream;
/// see the module docs.
pub fn remote_producer_scripts(spec: &RemoteSpec) -> Result<RemoteWorkload> {
    if spec.n_producers == 0 {
        return Err(FusionError::DegenerateTraining("producers"));
    }
    if spec.reconnect_every == Some(0) {
        return Err(FusionError::DegenerateTraining("reconnect_every"));
    }
    let stream = multi_tenant_events(&spec.tenants)?;
    let mut scripts: Vec<ProducerScript> = (0..spec.n_producers)
        .map(|producer| ProducerScript {
            producer,
            actions: Vec::new(),
        })
        .collect();
    let mut sends_since_reconnect = vec![0usize; spec.n_producers];
    for (tenant, events) in &stream.messages {
        let p = *tenant as usize % spec.n_producers;
        if let Some(every) = spec.reconnect_every {
            if sends_since_reconnect[p] == every {
                scripts[p].actions.push(ProducerAction::Reconnect);
                sends_since_reconnect[p] = 0;
            }
        }
        scripts[p].actions.push(ProducerAction::Send {
            tenant: *tenant,
            events: events.clone(),
        });
        sends_since_reconnect[p] += 1;
    }
    Ok(RemoteWorkload {
        seeds: stream.seeds,
        scripts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RemoteSpec {
        RemoteSpec::new(MultiTenantSpec::new(5, 160, 99), 2)
    }

    #[test]
    fn scripts_partition_tenants_and_preserve_order() {
        let w = remote_producer_scripts(&spec()).unwrap();
        assert_eq!(w.scripts.len(), 2);
        assert!(w.n_events() > 0);
        // Tenant → producer assignment is deterministic and disjoint.
        for s in &w.scripts {
            for a in &s.actions {
                if let ProducerAction::Send { tenant, .. } = a {
                    assert_eq!(*tenant as usize % 2, s.producer);
                }
            }
        }
        // Per-tenant batch order inside a script matches the stream.
        let stream = multi_tenant_events(&spec().tenants).unwrap();
        for tenant in 0..5u32 {
            let from_stream: Vec<&[Event]> = stream.tenant_messages(tenant).collect();
            let from_script: Vec<&[Event]> = w.scripts[tenant as usize % 2]
                .actions
                .iter()
                .filter_map(|a| match a {
                    ProducerAction::Send { tenant: t, events } if *t == tenant => {
                        Some(events.as_slice())
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(from_stream, from_script);
        }
    }

    #[test]
    fn reconnects_fire_on_schedule() {
        let w = remote_producer_scripts(&spec()).unwrap();
        for s in &w.scripts {
            assert!(
                s.n_reconnects() > 0,
                "producer {} never reconnects",
                s.producer
            );
            // Never two reconnects in a row, never as the first action.
            let mut prev_was_reconnect = true;
            for a in &s.actions {
                let is_reconnect = matches!(a, ProducerAction::Reconnect);
                assert!(!(prev_was_reconnect && is_reconnect));
                prev_was_reconnect = is_reconnect;
            }
        }
        let mut stable = spec();
        stable.reconnect_every = None;
        let w = remote_producer_scripts(&stable).unwrap();
        assert!(w.scripts.iter().all(|s| s.n_reconnects() == 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = remote_producer_scripts(&spec()).unwrap();
        let b = remote_producer_scripts(&spec()).unwrap();
        assert_eq!(a.scripts, b.scripts);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = spec();
        s.n_producers = 0;
        assert!(remote_producer_scripts(&s).is_err());
        let mut s = spec();
        s.reconnect_every = Some(0);
        assert!(remote_producer_scripts(&s).is_err());
    }
}
