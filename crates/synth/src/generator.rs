//! Synthetic observation generators with controlled quality and
//! correlation structure (§5.2 of the paper).
//!
//! The generator creates a world of `n_triples` triples with a fixed
//! true-fraction, then lets each source provide each triple according to
//! its target marginals: recall `r_i` for true triples and the
//! Theorem 3.5-consistent false-positive rate
//! `q_i = r_i · N_true (1-p_i) / (p_i · N_false)` for false triples.
//!
//! Correlation groups perturb the *joint* distribution while preserving
//! those marginals exactly:
//!
//! * **Positive** groups share a latent per-triple indicator `z ~ Bern(rho)`
//!   and interpolate, with strength `s`, between independence and the
//!   maximal-correlation coupling (`hi_k = m_k + s·(hi_max − m_k)`,
//!   `lo_k` chosen so `rho·hi + (1−rho)·lo = m_k`).
//! * **Complementary** groups draw a per-triple owner uniformly among the
//!   `K` members; the owner provides with boosted probability and the rest
//!   with probability damped by `s`, again preserving each marginal.
//!
//! Triples that end up with no provider are dropped (the data model only
//! contains observed triples), so realized dataset statistics differ
//! slightly from the targets; tests bound that gap.

use corrfuse_core::dataset::{Dataset, DatasetBuilder};
use corrfuse_core::error::{FusionError, Result};

use corrfuse_core::rng::StdRng;

/// Target quality of one synthetic source.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Display name.
    pub name: String,
    /// Target precision.
    pub precision: f64,
    /// Target recall.
    pub recall: f64,
}

impl SourceSpec {
    /// Source with an auto-generated name.
    pub fn new(precision: f64, recall: f64) -> Self {
        SourceSpec {
            name: String::new(),
            precision,
            recall,
        }
    }

    /// Source with an explicit name.
    pub fn named(name: impl Into<String>, precision: f64, recall: f64) -> Self {
        SourceSpec {
            name: name.into(),
            precision,
            recall,
        }
    }
}

/// Which side of the gold standard a correlation group binds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Correlated provision of true triples (e.g. shared extraction rules).
    TrueTriples,
    /// Correlated provision of false triples (e.g. shared mistakes, copying).
    FalseTriples,
}

/// Shape of the correlation within a group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GroupKind {
    /// Positive correlation with the given strength in `[0, 1]`
    /// (0 = independent, 1 = maximal coupling).
    Positive {
        /// Interpolation factor towards the maximal-correlation coupling.
        strength: f64,
    },
    /// Negative correlation (complementary provision) with strength in
    /// `[0, 1]`.
    Complementary {
        /// Interpolation factor towards fully-partitioned provision.
        strength: f64,
    },
}

/// A correlated group of sources.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Indices into [`SynthSpec::sources`].
    pub members: Vec<usize>,
    /// Triple polarity the correlation acts on.
    pub polarity: Polarity,
    /// Positive or complementary, with strength.
    pub kind: GroupKind,
}

/// Full specification of a synthetic fusion problem.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Number of world triples before provider filtering.
    pub n_triples: usize,
    /// Fraction of world triples that are true.
    pub true_fraction: f64,
    /// Sources with target quality.
    pub sources: Vec<SourceSpec>,
    /// Correlation groups (disjoint per polarity).
    pub groups: Vec<GroupSpec>,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl SynthSpec {
    /// `n` identical independent sources — the Figure 6 configuration.
    pub fn uniform(
        n_sources: usize,
        precision: f64,
        recall: f64,
        n_triples: usize,
        true_fraction: f64,
        seed: u64,
    ) -> Self {
        SynthSpec {
            n_triples,
            true_fraction,
            sources: (0..n_sources)
                .map(|_| SourceSpec::new(precision, recall))
                .collect(),
            groups: Vec::new(),
            seed,
        }
    }

    /// Add a correlation group (builder style).
    pub fn with_group(mut self, group: GroupSpec) -> Self {
        self.groups.push(group);
        self
    }
}

/// Per-member provision probabilities under a latent indicator.
#[derive(Debug, Clone)]
struct Coupling {
    /// Probability the latent indicator fires.
    rho: f64,
    /// Provision probability when the indicator fires, per member.
    hi: Vec<f64>,
    /// Provision probability otherwise, per member.
    lo: Vec<f64>,
}

fn positive_coupling(marginals: &[f64], strength: f64) -> Coupling {
    let s = strength.clamp(0.0, 1.0);
    let rho = (marginals.iter().sum::<f64>() / marginals.len() as f64).clamp(1e-6, 1.0 - 1e-6);
    let mut hi = Vec::with_capacity(marginals.len());
    let mut lo = Vec::with_capacity(marginals.len());
    for &m in marginals {
        let hi_max = (m / rho).min(1.0);
        let h = m + s * (hi_max - m);
        // Solve rho*h + (1-rho)*l = m for l; clamping is never needed
        // because h <= hi_max keeps l >= lo_max >= 0.
        let l = ((m - rho * h) / (1.0 - rho)).clamp(0.0, 1.0);
        hi.push(h);
        lo.push(l);
    }
    Coupling { rho, hi, lo }
}

/// For complementary groups the "latent indicator" is the owner index; we
/// return per-member (owner-boosted, non-owner-damped) probabilities.
fn complementary_rates(marginals: &[f64], strength: f64) -> (Vec<f64>, Vec<f64>) {
    let s = strength.clamp(0.0, 1.0);
    let k = marginals.len() as f64;
    let mut boosted = Vec::with_capacity(marginals.len());
    let mut damped = Vec::with_capacity(marginals.len());
    for &m in marginals {
        // Target: owner rate pi = m (1 + (K-1) s), non-owner rate
        // delta = m (1 - s); marginal = pi/K + (K-1) delta/K = m.
        let mut pi = m * (1.0 + (k - 1.0) * s);
        let mut delta = m * (1.0 - s);
        if pi > 1.0 {
            // Clamp and re-solve delta to preserve the marginal.
            pi = 1.0;
            delta = ((m - pi / k) * k / (k - 1.0)).clamp(0.0, 1.0);
        }
        boosted.push(pi);
        damped.push(delta);
    }
    (boosted, damped)
}

/// Validate a spec: probabilities in range, members in range, groups
/// disjoint per polarity, derived `q` feasible.
fn validate(spec: &SynthSpec) -> Result<(usize, usize, Vec<f64>)> {
    if spec.sources.is_empty() || spec.n_triples == 0 {
        return Err(FusionError::DegenerateTraining("any"));
    }
    crate::check_fraction("true_fraction", spec.true_fraction)?;
    let n_true = ((spec.n_triples as f64) * spec.true_fraction).round() as usize;
    let n_false = spec.n_triples - n_true;
    if n_true == 0 {
        return Err(FusionError::DegenerateTraining("true"));
    }
    if n_false == 0 {
        return Err(FusionError::DegenerateTraining("false"));
    }
    let mut fprs = Vec::with_capacity(spec.sources.len());
    for s in &spec.sources {
        corrfuse_core::prob::check_prob("precision", s.precision)?;
        corrfuse_core::prob::check_prob("recall", s.recall)?;
        if s.precision == 0.0 {
            return Err(FusionError::InvalidProbability {
                what: "precision",
                value: 0.0,
            });
        }
        let q = s.recall * n_true as f64 * (1.0 - s.precision) / (s.precision * n_false as f64);
        if q > 1.0 {
            return Err(FusionError::FalsePositiveRateOutOfRange {
                precision: s.precision,
                recall: s.recall,
                alpha: n_true as f64 / spec.n_triples as f64,
                q,
            });
        }
        fprs.push(q);
    }
    for polarity in [Polarity::TrueTriples, Polarity::FalseTriples] {
        let mut seen = vec![false; spec.sources.len()];
        for g in spec.groups.iter().filter(|g| g.polarity == polarity) {
            if g.members.len() < 2 {
                return Err(FusionError::DegenerateTraining("group members"));
            }
            for &m in &g.members {
                if m >= spec.sources.len() {
                    return Err(FusionError::UnknownSource(format!("member {m}")));
                }
                if seen[m] {
                    return Err(FusionError::UnknownSource(format!(
                        "source {m} in two {polarity:?} groups"
                    )));
                }
                seen[m] = true;
            }
        }
    }
    Ok((n_true, n_false, fprs))
}

/// Generate a labelled dataset from a spec.
pub fn generate(spec: &SynthSpec) -> Result<Dataset> {
    let (n_true, _n_false, fprs) = validate(spec)?;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n_sources = spec.sources.len();

    let mut builder = DatasetBuilder::new();
    let source_ids: Vec<_> = spec
        .sources
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if s.name.is_empty() {
                builder.source(format!("S{i}"))
            } else {
                builder.source(s.name.clone())
            }
        })
        .collect();

    // Pre-compute couplings per group per polarity.
    struct PreparedGroup {
        members: Vec<usize>,
        polarity: Polarity,
        mechanism: Mechanism,
    }
    enum Mechanism {
        Positive(Coupling),
        Complementary { boosted: Vec<f64>, damped: Vec<f64> },
    }
    let marginal = |polarity: Polarity, i: usize, spec: &SynthSpec, fprs: &[f64]| match polarity {
        Polarity::TrueTriples => spec.sources[i].recall,
        Polarity::FalseTriples => fprs[i],
    };
    let prepared: Vec<PreparedGroup> = spec
        .groups
        .iter()
        .map(|g| {
            let ms: Vec<f64> = g
                .members
                .iter()
                .map(|&i| marginal(g.polarity, i, spec, &fprs))
                .collect();
            let mechanism = match g.kind {
                GroupKind::Positive { strength } => {
                    Mechanism::Positive(positive_coupling(&ms, strength))
                }
                GroupKind::Complementary { strength } => {
                    let (boosted, damped) = complementary_rates(&ms, strength);
                    Mechanism::Complementary { boosted, damped }
                }
            };
            PreparedGroup {
                members: g.members.clone(),
                polarity: g.polarity,
                mechanism,
            }
        })
        .collect();

    // Which sources are group-driven, per polarity?
    let mut grouped_true = vec![false; n_sources];
    let mut grouped_false = vec![false; n_sources];
    for g in &prepared {
        let flags = match g.polarity {
            Polarity::TrueTriples => &mut grouped_true,
            Polarity::FalseTriples => &mut grouped_false,
        };
        for &m in &g.members {
            flags[m] = true;
        }
    }

    let mut provides = vec![false; n_sources];
    for idx in 0..spec.n_triples {
        let truth = idx < n_true;
        let polarity = if truth {
            Polarity::TrueTriples
        } else {
            Polarity::FalseTriples
        };
        provides.iter_mut().for_each(|p| *p = false);

        // Independent sources.
        for i in 0..n_sources {
            let grouped = match polarity {
                Polarity::TrueTriples => grouped_true[i],
                Polarity::FalseTriples => grouped_false[i],
            };
            if grouped {
                continue;
            }
            let m = marginal(polarity, i, spec, &fprs);
            if rng.gen_bool(m.clamp(0.0, 1.0)) {
                provides[i] = true;
            }
        }
        // Group-driven sources.
        for g in prepared.iter().filter(|g| g.polarity == polarity) {
            match &g.mechanism {
                Mechanism::Positive(c) => {
                    let z = rng.gen_bool(c.rho);
                    for (k, &i) in g.members.iter().enumerate() {
                        let p = if z { c.hi[k] } else { c.lo[k] };
                        if rng.gen_bool(p.clamp(0.0, 1.0)) {
                            provides[i] = true;
                        }
                    }
                }
                Mechanism::Complementary { boosted, damped } => {
                    let owner = rng.gen_range(0..g.members.len());
                    for (k, &i) in g.members.iter().enumerate() {
                        let p = if k == owner { boosted[k] } else { damped[k] };
                        if rng.gen_bool(p.clamp(0.0, 1.0)) {
                            provides[i] = true;
                        }
                    }
                }
            }
        }

        if provides.iter().any(|&p| p) {
            let t = builder.triple(format!("e{idx}"), "attr", format!("v{idx}"));
            builder.label(t, truth);
            for (i, &p) in provides.iter().enumerate() {
                if p {
                    builder.observe(source_ids[i], t);
                }
            }
        }
    }
    builder.build()
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use corrfuse_core::joint::{correlation_false, correlation_true, EmpiricalJoint, SourceSet};
    use corrfuse_core::quality::QualityEstimator;

    fn realized_quality(ds: &Dataset) -> Vec<corrfuse_core::SourceQuality> {
        QualityEstimator::new()
            .estimate(ds, ds.gold().unwrap())
            .unwrap()
    }

    #[test]
    fn independent_generator_hits_marginals() {
        let spec = SynthSpec::uniform(5, 0.75, 0.45, 20_000, 0.5, 42);
        let ds = generate(&spec).unwrap();
        let q = realized_quality(&ds);
        // Triples with no provider are dropped, which conditions the
        // realized recall upward by exactly 1/(1 - (1-r)^n).
        let expected_recall = 0.45 / (1.0 - 0.55f64.powi(5));
        for (i, sq) in q.iter().enumerate() {
            assert!(
                (sq.recall - expected_recall).abs() < 0.015,
                "S{i} recall {} (expected {expected_recall})",
                sq.recall
            );
            // Precision is unaffected by the filtering (per-source outputs
            // are unchanged).
            assert!(
                (sq.precision - 0.75).abs() < 0.02,
                "S{i} precision {}",
                sq.precision
            );
        }
    }

    #[test]
    fn true_fraction_is_respected_before_filtering() {
        let spec = SynthSpec::uniform(5, 0.6, 0.5, 10_000, 0.25, 7);
        let ds = generate(&spec).unwrap();
        let g = ds.gold().unwrap();
        let frac = g.true_count() as f64 / (g.true_count() + g.false_count()) as f64;
        // Filtering drops unprovided triples of both polarities; with five
        // sources at r=0.5 almost every true triple survives, and false
        // triples survive at ~1-(1-q)^5 — the realized fraction shifts but
        // stays in a sane band.
        assert!(frac > 0.15 && frac < 0.5, "realized true fraction {frac}");
    }

    #[test]
    fn positive_group_creates_positive_correlation() {
        let spec = SynthSpec::uniform(4, 0.7, 0.4, 20_000, 0.5, 123).with_group(GroupSpec {
            members: vec![0, 1],
            polarity: Polarity::TrueTriples,
            kind: GroupKind::Positive { strength: 0.8 },
        });
        let ds = generate(&spec).unwrap();
        let members: Vec<_> = ds.sources().collect();
        let joint = EmpiricalJoint::new(&ds, ds.gold().unwrap(), members, 0.5).unwrap();
        let c01 = correlation_true(&joint, SourceSet::EMPTY.with(0).with(1));
        let c23 = correlation_true(&joint, SourceSet::EMPTY.with(2).with(3));
        // Dropping unprovided triples deflates every lift by the kept
        // fraction (~0.82 here), so compare the two pairs relatively: the
        // grouped pair must sit far above the ungrouped one.
        assert!(c01 > 1.5, "grouped pair lift {c01}");
        assert!(c01 / c23 > 1.8, "grouped {c01} vs ungrouped {c23}");
        assert!((0.7..=1.05).contains(&c23), "ungrouped pair lift {c23}");
        // Marginals survive the coupling (up to the same conditioning).
        let q = realized_quality(&ds);
        assert!(
            (0.38..=0.52).contains(&q[0].recall),
            "recall {}",
            q[0].recall
        );
        assert!((0.38..=0.52).contains(&q[1].recall));
    }

    #[test]
    fn false_polarity_group_correlates_mistakes_only() {
        let spec = SynthSpec::uniform(4, 0.6, 0.4, 20_000, 0.5, 9).with_group(GroupSpec {
            members: vec![0, 1],
            polarity: Polarity::FalseTriples,
            kind: GroupKind::Positive { strength: 0.9 },
        });
        let ds = generate(&spec).unwrap();
        let members: Vec<_> = ds.sources().collect();
        let joint = EmpiricalJoint::new(&ds, ds.gold().unwrap(), members, 0.5).unwrap();
        let pair = SourceSet::EMPTY.with(0).with(1);
        assert!(correlation_false(&joint, pair) > 1.5);
        // True-triple lift stays near independence (deflated slightly by
        // the no-provider filtering).
        assert!((0.7..=1.1).contains(&correlation_true(&joint, pair)));
    }

    #[test]
    fn complementary_group_creates_negative_correlation() {
        let spec = SynthSpec::uniform(4, 0.7, 0.4, 20_000, 0.5, 321).with_group(GroupSpec {
            members: vec![0, 1, 2],
            polarity: Polarity::TrueTriples,
            kind: GroupKind::Complementary { strength: 0.9 },
        });
        let ds = generate(&spec).unwrap();
        let members: Vec<_> = ds.sources().collect();
        let joint = EmpiricalJoint::new(&ds, ds.gold().unwrap(), members, 0.5).unwrap();
        let c01 = correlation_true(&joint, SourceSet::EMPTY.with(0).with(1));
        assert!(c01 < 0.6, "complementary pair lift {c01}");
        // Marginals still calibrated (up to the filtering shift).
        let q = realized_quality(&ds);
        for k in 0..3 {
            assert!(
                (0.37..=0.52).contains(&q[k].recall),
                "recall {}",
                q[k].recall
            );
        }
    }

    #[test]
    fn coupling_math_preserves_marginals_exactly() {
        for &s in &[0.0, 0.3, 0.7, 1.0] {
            let ms = [0.2, 0.5, 0.9];
            let c = positive_coupling(&ms, s);
            for (k, &m) in ms.iter().enumerate() {
                let got = c.rho * c.hi[k] + (1.0 - c.rho) * c.lo[k];
                assert!((got - m).abs() < 1e-9, "s={s} k={k}: {got} vs {m}");
                assert!((0.0..=1.0).contains(&c.hi[k]));
                assert!((0.0..=1.0).contains(&c.lo[k]));
            }
        }
    }

    #[test]
    fn complementary_math_preserves_marginals() {
        for &s in &[0.0, 0.5, 1.0] {
            let ms = [0.2, 0.4, 0.15];
            let k = ms.len() as f64;
            let (boost, damp) = complementary_rates(&ms, s);
            for (i, &m) in ms.iter().enumerate() {
                let got = boost[i] / k + (k - 1.0) * damp[i] / k;
                assert!((got - m).abs() < 1e-9, "s={s} i={i}");
                assert!((0.0..=1.0).contains(&boost[i]));
                assert!((0.0..=1.0).contains(&damp[i]));
            }
        }
        // Clamped case: marginal too large for full boost.
        let (boost, damp) = complementary_rates(&[0.8, 0.8], 1.0);
        assert_eq!(boost[0], 1.0);
        let got = boost[0] / 2.0 + damp[0] / 2.0;
        assert!((got - 0.8).abs() < 1e-9);
    }

    #[test]
    fn determinism_under_same_seed() {
        let spec = SynthSpec::uniform(3, 0.6, 0.3, 500, 0.4, 99);
        let a = generate(&spec).unwrap();
        let b = generate(&spec).unwrap();
        assert_eq!(a.n_triples(), b.n_triples());
        for t in a.triples() {
            assert_eq!(
                a.providers(t).iter_ones().collect::<Vec<_>>(),
                b.providers(t).iter_ones().collect::<Vec<_>>()
            );
        }
        let spec2 = SynthSpec::uniform(3, 0.6, 0.3, 500, 0.4, 100);
        let c = generate(&spec2).unwrap();
        let same = a.n_triples() == c.n_triples()
            && a.triples().all(|t| {
                c.providers(t).iter_ones().collect::<Vec<_>>()
                    == a.providers(t).iter_ones().collect::<Vec<_>>()
            });
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn invalid_specs_rejected() {
        // Infeasible q (> 1).
        let spec = SynthSpec::uniform(2, 0.05, 0.9, 1000, 0.9, 1);
        assert!(matches!(
            generate(&spec),
            Err(FusionError::FalsePositiveRateOutOfRange { .. })
        ));
        // Overlapping groups on the same polarity.
        let spec = SynthSpec::uniform(3, 0.7, 0.4, 100, 0.5, 1)
            .with_group(GroupSpec {
                members: vec![0, 1],
                polarity: Polarity::TrueTriples,
                kind: GroupKind::Positive { strength: 0.5 },
            })
            .with_group(GroupSpec {
                members: vec![1, 2],
                polarity: Polarity::TrueTriples,
                kind: GroupKind::Positive { strength: 0.5 },
            });
        assert!(generate(&spec).is_err());
        // Member out of range.
        let spec = SynthSpec::uniform(2, 0.7, 0.4, 100, 0.5, 1).with_group(GroupSpec {
            members: vec![0, 5],
            polarity: Polarity::FalseTriples,
            kind: GroupKind::Positive { strength: 0.5 },
        });
        assert!(generate(&spec).is_err());
        // Single-member group.
        let spec = SynthSpec::uniform(2, 0.7, 0.4, 100, 0.5, 1).with_group(GroupSpec {
            members: vec![0],
            polarity: Polarity::TrueTriples,
            kind: GroupKind::Positive { strength: 0.5 },
        });
        assert!(generate(&spec).is_err());
        // Bad fraction.
        let spec = SynthSpec::uniform(2, 0.7, 0.4, 100, 1.5, 1);
        assert!(generate(&spec).is_err());
        // Empty sources.
        let spec = SynthSpec::uniform(0, 0.7, 0.4, 100, 0.5, 1);
        assert!(generate(&spec).is_err());
    }

    #[test]
    fn same_polarity_allows_groups_on_different_polarities() {
        // A source may sit in a true-group and a false-group simultaneously
        // (the paper found mostly different cliques per polarity).
        let spec = SynthSpec::uniform(4, 0.7, 0.4, 5000, 0.5, 5)
            .with_group(GroupSpec {
                members: vec![0, 1],
                polarity: Polarity::TrueTriples,
                kind: GroupKind::Positive { strength: 0.8 },
            })
            .with_group(GroupSpec {
                members: vec![0, 2],
                polarity: Polarity::FalseTriples,
                kind: GroupKind::Positive { strength: 0.8 },
            });
        assert!(generate(&spec).is_ok());
    }
}
