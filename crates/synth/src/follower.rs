//! Replication-fault scenarios for the read-replica subsystem
//! (`corrfuse-replica`).
//!
//! [`follower_scenario`] wraps a [`crate::multi_tenant`] workload with a
//! deterministic fault schedule: at chosen points in the interleaved
//! message sequence the harness severs the follower's leader links,
//! rotates the leader's shard journals, or cold-restarts the follower
//! process entirely. The schedule is what makes the replica equivalence
//! property adversarial — every fault lands mid-stream, so resumes,
//! snapshot re-bootstraps and journal recovery all get exercised while
//! epochs keep advancing.

use corrfuse_core::error::Result;
use corrfuse_core::rng::StdRng;

use crate::multi_tenant::{multi_tenant_events, MultiTenantSpec, MultiTenantStream};

/// A replication fault injected after a given message index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Sever every live leader link; links resubscribe from their
    /// applied epochs (resume or snapshot, depending on the backlog).
    Disconnect,
    /// Rotate (compact in place) every leader shard journal, under the
    /// active replication taps.
    RotateJournal,
    /// Tear the follower down and start a fresh one from its on-disk
    /// journals (or from scratch when it keeps none).
    ColdRestart,
}

/// Specification of a follower fault scenario.
#[derive(Debug, Clone)]
pub struct FollowerScenarioSpec {
    /// The underlying multi-tenant ingest workload.
    pub tenants: MultiTenantSpec,
    /// Link disconnects to inject.
    pub n_disconnects: usize,
    /// Leader journal rotations to inject.
    pub n_rotations: usize,
    /// Follower cold restarts to inject.
    pub n_restarts: usize,
    /// RNG seed for the fault placement (independent of the workload
    /// seed, so the same stream can carry different schedules).
    pub seed: u64,
}

impl FollowerScenarioSpec {
    /// A small default schedule: one fault of each kind.
    pub fn new(tenants: MultiTenantSpec, seed: u64) -> Self {
        FollowerScenarioSpec {
            tenants,
            n_disconnects: 1,
            n_rotations: 1,
            n_restarts: 1,
            seed,
        }
    }
}

/// A generated scenario: the workload plus its fault schedule.
#[derive(Debug, Clone)]
pub struct FollowerScenario {
    /// The interleaved multi-tenant workload.
    pub stream: MultiTenantStream,
    /// Faults sorted by position: `(i, fault)` fires after the `i`-th
    /// message (0-based) has been ingested on the leader. Positions are
    /// distinct, so at most one fault fires per message boundary.
    pub faults: Vec<(usize, Fault)>,
}

impl FollowerScenario {
    /// The faults scheduled at message boundary `i`, if any.
    pub fn fault_after(&self, i: usize) -> Option<Fault> {
        self.faults.iter().find(|(at, _)| *at == i).map(|(_, f)| *f)
    }
}

/// Generate the workload and place the faults at distinct mid-stream
/// message boundaries (never before the first message or after the
/// last, so every fault interrupts live replication). See the module
/// docs.
pub fn follower_scenario(spec: &FollowerScenarioSpec) -> Result<FollowerScenario> {
    let stream = multi_tenant_events(&spec.tenants)?;
    let n_messages = stream.messages.len();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x666f_6c6c_6f77_6572); // "follower"
    let wanted: Vec<Fault> = std::iter::empty()
        .chain(std::iter::repeat_n(Fault::Disconnect, spec.n_disconnects))
        .chain(std::iter::repeat_n(Fault::RotateJournal, spec.n_rotations))
        .chain(std::iter::repeat_n(Fault::ColdRestart, spec.n_restarts))
        .collect();
    // Sample distinct interior boundaries; with a short stream there may
    // be fewer boundaries than requested faults, in which case the
    // schedule is truncated (position exhaustion, not an error).
    let interior: Vec<usize> = (0..n_messages.saturating_sub(1)).collect();
    let mut positions = interior;
    // Fisher–Yates prefix shuffle: the first `wanted.len()` entries
    // become the fault positions.
    let take = wanted.len().min(positions.len());
    for i in 0..take {
        let j = rng.gen_range(i..positions.len());
        positions.swap(i, j);
    }
    let mut faults: Vec<(usize, Fault)> = positions.into_iter().take(take).zip(wanted).collect();
    faults.sort_by_key(|(at, _)| *at);
    Ok(FollowerScenario { stream, faults })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FollowerScenarioSpec {
        FollowerScenarioSpec {
            tenants: MultiTenantSpec::new(4, 120, 7),
            n_disconnects: 2,
            n_rotations: 1,
            n_restarts: 1,
            seed: 11,
        }
    }

    #[test]
    fn schedules_are_deterministic_and_distinct() {
        let a = follower_scenario(&spec()).unwrap();
        let b = follower_scenario(&spec()).unwrap();
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.faults.len(), 4);
        let mut positions: Vec<usize> = a.faults.iter().map(|(at, _)| *at).collect();
        let n = positions.len();
        positions.dedup();
        assert_eq!(positions.len(), n, "fault positions must be distinct");
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
        // Every fault is interior: replication is live when it fires.
        assert!(*positions.last().unwrap() < a.stream.messages.len() - 1);
        // A different fault seed moves the schedule without touching the
        // workload.
        let mut other = spec();
        other.seed = 12;
        let c = follower_scenario(&other).unwrap();
        assert_eq!(a.stream.messages, c.stream.messages);
        assert_ne!(a.faults, c.faults);
    }

    #[test]
    fn fault_counts_follow_the_spec() {
        let s = follower_scenario(&spec()).unwrap();
        let count = |f: Fault| s.faults.iter().filter(|(_, g)| *g == f).count();
        assert_eq!(count(Fault::Disconnect), 2);
        assert_eq!(count(Fault::RotateJournal), 1);
        assert_eq!(count(Fault::ColdRestart), 1);
        assert_eq!(s.fault_after(s.faults[0].0), Some(s.faults[0].1));
        assert_eq!(s.fault_after(usize::MAX), None);
    }

    #[test]
    fn oversubscribed_schedules_truncate() {
        let mut s = spec();
        s.n_disconnects = 10_000;
        let sc = follower_scenario(&s).unwrap();
        assert!(sc.faults.len() < 10_000);
        assert_eq!(sc.faults.len(), sc.stream.messages.len() - 1);
    }
}
