//! Adversarial label-churn workloads for the incremental core path.
//!
//! [`label_churn_stream`] seeds a session with a *whole* generated world
//! (claims and labels included) and then streams batches that flip
//! existing gold labels back and forth — optionally sprinkling in new
//! claim edges — without ever adding a triple or source. Every batch
//! therefore lands on the hottest maintenance paths: per-source count
//! retraction/re-add, in-place joint-row patches across every cluster,
//! and (under data-driven `Auto` clustering) pairwise-lift updates that
//! can re-partition the sources, including across correlation-group
//! boundaries. The equivalence property in
//! `tests/label_churn_equivalence.rs` runs on this workload.

use corrfuse_core::dataset::{Dataset, SourceId};
use corrfuse_core::error::{FusionError, Result};
use corrfuse_core::rng::StdRng;
use corrfuse_core::triple::TripleId;
use corrfuse_stream::Event;

use crate::generator::{generate, SynthSpec};

/// Specification of a label-churn workload.
#[derive(Debug, Clone)]
pub struct ChurnSpec {
    /// The world to generate; it seeds the session in full. Give it
    /// correlation groups so the (data-driven) clustering has boundaries
    /// for the churn to push labels across.
    pub base: SynthSpec,
    /// Number of churn batches.
    pub n_batches: usize,
    /// Label flips per batch. A flip inverts the *current* label of a
    /// random triple (tracked across batches, so labels genuinely go back
    /// and forth); flips that would empty either label class are skipped
    /// to keep the training set non-degenerate.
    pub flips_per_batch: usize,
    /// Probability that a batch also adds one brand-new claim edge (a
    /// random source claiming a random triple it does not provide yet),
    /// shifting provider sets and pair provision counts.
    pub claim_fraction: f64,
    /// RNG seed for the churn itself (independent of `base.seed`).
    pub seed: u64,
}

impl ChurnSpec {
    /// A default adversarial workload over `base`.
    pub fn new(base: SynthSpec, n_batches: usize, seed: u64) -> Self {
        ChurnSpec {
            base,
            n_batches,
            flips_per_batch: 4,
            claim_fraction: 0.5,
            seed,
        }
    }
}

/// Generate the world and the churn batches: `(seed dataset, batches)`.
/// The seed is the full world; batches only flip labels and add claims.
pub fn label_churn_stream(spec: &ChurnSpec) -> Result<(Dataset, Vec<Vec<Event>>)> {
    if spec.n_batches == 0 || spec.flips_per_batch == 0 {
        return Err(FusionError::DegenerateTraining("churn batches"));
    }
    if !(0.0..=1.0).contains(&spec.claim_fraction) {
        return Err(FusionError::InvalidProbability {
            what: "claim_fraction",
            value: spec.claim_fraction,
        });
    }
    let world = generate(&spec.base)?;
    let gold = world.gold().expect("generator labels every triple");
    let n = world.n_triples();
    if n < 2 {
        return Err(FusionError::DegenerateTraining("triples"));
    }
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Track the live label state so flips invert the *current* value.
    let mut labels: Vec<bool> = world
        .triples()
        .map(|t| gold.get(t).expect("labelled world"))
        .collect();
    let mut n_true = labels.iter().filter(|&&b| b).count();
    let mut n_false = n - n_true;
    // Track provider sets so sprinkled claims are genuinely new edges.
    let mut provides: Vec<Vec<bool>> = world
        .triples()
        .map(|t| {
            (0..world.n_sources())
                .map(|s| world.providers(t).get(s))
                .collect()
        })
        .collect();

    let mut batches: Vec<Vec<Event>> = Vec::with_capacity(spec.n_batches);
    for _ in 0..spec.n_batches {
        let mut batch = Vec::new();
        for _ in 0..spec.flips_per_batch {
            let t = rng.gen_range(0..n);
            let next = !labels[t];
            // Never empty a label class: a degenerate training set would
            // (correctly) poison the session mid-churn.
            if next && n_false == 1 || !next && n_true == 1 {
                continue;
            }
            labels[t] = next;
            if next {
                n_true += 1;
                n_false -= 1;
            } else {
                n_true -= 1;
                n_false += 1;
            }
            batch.push(Event::label(TripleId(t as u32), next));
        }
        if spec.claim_fraction > 0.0 && rng.gen_bool(spec.claim_fraction) {
            // One new claim edge, if a free (source, triple) slot exists
            // in a few probes.
            for _ in 0..8 {
                let s = rng.gen_range(0..world.n_sources());
                let t = rng.gen_range(0..n);
                if !provides[t][s] {
                    provides[t][s] = true;
                    batch.push(Event::claim(SourceId(s as u32), TripleId(t as u32)));
                    break;
                }
            }
        }
        batches.push(batch);
    }
    Ok((world, batches))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GroupKind, GroupSpec, Polarity};
    use corrfuse_stream::replay;

    fn spec() -> ChurnSpec {
        let base = SynthSpec::uniform(6, 0.8, 0.5, 120, 0.5, 3)
            .with_group(GroupSpec {
                members: vec![0, 1],
                polarity: Polarity::FalseTriples,
                kind: GroupKind::Positive { strength: 0.9 },
            })
            .with_group(GroupSpec {
                members: vec![2, 3],
                polarity: Polarity::TrueTriples,
                kind: GroupKind::Positive { strength: 0.8 },
            });
        ChurnSpec::new(base, 6, 17)
    }

    #[test]
    fn churn_flips_labels_back_and_forth() {
        let (seed, batches) = label_churn_stream(&spec()).unwrap();
        assert_eq!(batches.len(), 6);
        let flips: Vec<(TripleId, bool)> = batches
            .iter()
            .flatten()
            .filter_map(|e| match e {
                Event::Label { triple, truth } => Some((*triple, *truth)),
                _ => None,
            })
            .collect();
        assert!(!flips.is_empty());
        // Every flip inverts the then-current label.
        let mut labels: Vec<bool> = seed
            .triples()
            .map(|t| seed.gold().unwrap().get(t).unwrap())
            .collect();
        for (t, truth) in flips {
            assert_ne!(labels[t.index()], truth, "flip at {t} is a no-op");
            labels[t.index()] = truth;
        }
        // The replayed stream still carries both label classes.
        let events: Vec<Event> = batches.concat();
        let accumulated = replay::accumulate(&seed, &events).unwrap();
        let g = accumulated.gold().unwrap();
        assert!(g.true_count() > 0 && g.false_count() > 0);
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let (_, a) = label_churn_stream(&spec()).unwrap();
        let (_, b) = label_churn_stream(&spec()).unwrap();
        assert_eq!(a, b);
        let mut other = spec();
        other.seed = 18;
        let (_, c) = label_churn_stream(&other).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = spec();
        s.n_batches = 0;
        assert!(label_churn_stream(&s).is_err());
        let mut s = spec();
        s.claim_fraction = 1.5;
        assert!(label_churn_stream(&s).is_err());
    }
}
