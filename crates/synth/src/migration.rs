//! Tenant-migration chaos scenarios for the sharded router
//! (`corrfuse-serve::migration`).
//!
//! [`migration_scenario`] wraps a [`crate::multi_tenant`] workload with
//! a deterministic fault schedule aimed at the live-migration state
//! machine: at chosen points in the interleaved message sequence the
//! harness migrates the hot tenant between shards, crash-aborts a
//! migration at a chosen stage (exercising the rollback path), rotates
//! the shard journals under the migration, or replays a burst of
//! recent messages (exercising idempotent re-ingest across the route
//! flip). The schedule is what makes the migration equivalence
//! property adversarial — every fault lands mid-stream, while
//! co-tenant ingest keeps both shards moving.

use corrfuse_core::error::Result;
use corrfuse_core::rng::StdRng;

use crate::multi_tenant::{multi_tenant_events, MultiTenantSpec, MultiTenantStream};

/// A migration fault injected after a given message index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationFault {
    /// Migrate the hot tenant to the next shard, concurrently with the
    /// ingest that follows (the harness joins it at the next fault or
    /// at end of stream).
    Migrate,
    /// Start a migration that crash-aborts after the given stage
    /// (0 = planning, 1 = bulk replay, 2 = cut-over) and must roll
    /// back cleanly: the tenant stays fully served by its source.
    CrashedMigrate(u8),
    /// Rotate (compact in place) every shard journal, so recovery
    /// evidence and route persistence interleave with migrations.
    RotateJournals,
    /// Re-send a burst of recently ingested messages verbatim; replay
    /// is idempotent, so scores must not move no matter which side of
    /// a route flip the duplicates land on.
    IngestBurst,
}

/// Specification of a migration chaos scenario.
#[derive(Debug, Clone)]
pub struct MigrationScenarioSpec {
    /// The underlying multi-tenant ingest workload.
    pub tenants: MultiTenantSpec,
    /// Successful hot-tenant migrations to inject.
    pub n_migrations: usize,
    /// Crash-aborted migrations (random stage) to inject.
    pub n_crashes: usize,
    /// Journal rotations to inject.
    pub n_rotations: usize,
    /// Duplicate ingest bursts to inject.
    pub n_bursts: usize,
    /// RNG seed for fault placement and crash stages (independent of
    /// the workload seed, so the same stream can carry different
    /// schedules).
    pub seed: u64,
}

impl MigrationScenarioSpec {
    /// A small default schedule: one fault of each kind.
    pub fn new(tenants: MultiTenantSpec, seed: u64) -> Self {
        MigrationScenarioSpec {
            tenants,
            n_migrations: 1,
            n_crashes: 1,
            n_rotations: 1,
            n_bursts: 1,
            seed,
        }
    }
}

/// A generated scenario: the workload plus its fault schedule.
#[derive(Debug, Clone)]
pub struct MigrationScenario {
    /// The interleaved multi-tenant workload.
    pub stream: MultiTenantStream,
    /// Faults sorted by position: `(i, fault)` fires after the `i`-th
    /// message (0-based) has been ingested. Positions are distinct, so
    /// at most one fault fires per message boundary.
    pub faults: Vec<(usize, MigrationFault)>,
}

impl MigrationScenario {
    /// The fault scheduled at message boundary `i`, if any.
    pub fn fault_after(&self, i: usize) -> Option<MigrationFault> {
        self.faults.iter().find(|(at, _)| *at == i).map(|(_, f)| *f)
    }
}

/// Generate the workload and place the faults at distinct mid-stream
/// message boundaries (never before the first message or after the
/// last, so every fault interrupts live ingest). See the module docs.
pub fn migration_scenario(spec: &MigrationScenarioSpec) -> Result<MigrationScenario> {
    let stream = multi_tenant_events(&spec.tenants)?;
    let n_messages = stream.messages.len();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x6d69_6772_6174_6521); // "migrate!"
    let wanted: Vec<MigrationFault> = std::iter::empty()
        .chain(std::iter::repeat_n(
            MigrationFault::Migrate,
            spec.n_migrations,
        ))
        .chain(
            (0..spec.n_crashes).map(|_| MigrationFault::CrashedMigrate(rng.gen_range(0..3) as u8)),
        )
        .chain(std::iter::repeat_n(
            MigrationFault::RotateJournals,
            spec.n_rotations,
        ))
        .chain(std::iter::repeat_n(
            MigrationFault::IngestBurst,
            spec.n_bursts,
        ))
        .collect();
    // Sample distinct interior boundaries; with a short stream there may
    // be fewer boundaries than requested faults, in which case the
    // schedule is truncated (position exhaustion, not an error).
    let mut positions: Vec<usize> = (0..n_messages.saturating_sub(1)).collect();
    // Fisher–Yates prefix shuffle: the first `wanted.len()` entries
    // become the fault positions.
    let take = wanted.len().min(positions.len());
    for i in 0..take {
        let j = rng.gen_range(i..positions.len());
        positions.swap(i, j);
    }
    let mut faults: Vec<(usize, MigrationFault)> =
        positions.into_iter().take(take).zip(wanted).collect();
    faults.sort_by_key(|(at, _)| *at);
    Ok(MigrationScenario { stream, faults })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MigrationScenarioSpec {
        MigrationScenarioSpec {
            tenants: MultiTenantSpec::new(4, 120, 7),
            n_migrations: 2,
            n_crashes: 2,
            n_rotations: 1,
            n_bursts: 1,
            seed: 23,
        }
    }

    #[test]
    fn schedules_are_deterministic_and_distinct() {
        let a = migration_scenario(&spec()).unwrap();
        let b = migration_scenario(&spec()).unwrap();
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.faults.len(), 6);
        let mut positions: Vec<usize> = a.faults.iter().map(|(at, _)| *at).collect();
        let n = positions.len();
        positions.dedup();
        assert_eq!(positions.len(), n, "fault positions must be distinct");
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
        // Every fault is interior: ingest is live when it fires.
        assert!(*positions.last().unwrap() < a.stream.messages.len() - 1);
        // A different fault seed moves the schedule without touching the
        // workload.
        let mut other = spec();
        other.seed = 24;
        let c = migration_scenario(&other).unwrap();
        assert_eq!(a.stream.messages, c.stream.messages);
        assert_ne!(a.faults, c.faults);
    }

    #[test]
    fn fault_counts_and_stages_follow_the_spec() {
        let s = migration_scenario(&spec()).unwrap();
        let count = |p: fn(MigrationFault) -> bool| s.faults.iter().filter(|(_, f)| p(*f)).count();
        assert_eq!(count(|f| f == MigrationFault::Migrate), 2);
        assert_eq!(count(|f| matches!(f, MigrationFault::CrashedMigrate(_))), 2);
        assert_eq!(count(|f| f == MigrationFault::RotateJournals), 1);
        assert_eq!(count(|f| f == MigrationFault::IngestBurst), 1);
        // Crash stages are always one of the three abortable stages.
        for (_, f) in &s.faults {
            if let MigrationFault::CrashedMigrate(stage) = f {
                assert!(*stage < 3, "crash stage {stage} out of range");
            }
        }
        assert_eq!(s.fault_after(s.faults[0].0), Some(s.faults[0].1));
        assert_eq!(s.fault_after(usize::MAX), None);
    }

    #[test]
    fn oversubscribed_schedules_truncate() {
        let mut s = spec();
        s.n_migrations = 10_000;
        let sc = migration_scenario(&s).unwrap();
        assert!(sc.faults.len() < 10_000);
        assert_eq!(sc.faults.len(), sc.stream.messages.len() - 1);
    }
}
