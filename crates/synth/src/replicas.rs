//! Statistical twins of the paper's three real-world datasets.
//!
//! The originals (ReVerb ClueWeb extractions, Mechanical-Turk restaurant
//! labels, an abebooks.com crawl) are not redistributable; per DESIGN.md §5
//! we generate replicas that match the published *shape*: source counts,
//! gold-standard sizes, true/false proportions, the qualitative quality
//! bands of Figure "scatter", and the correlation structure reported in
//! §5.1 ("Discovered correlations"). Every compared algorithm consumes only
//! the observation matrix and labels, so matching those statistics
//! preserves the behaviour the paper's evaluation exercises.

use corrfuse_core::dataset::{Dataset, DatasetBuilder, Domain};
use corrfuse_core::error::Result;

use corrfuse_core::rng::StdRng;

use crate::generator::{generate, GroupKind, GroupSpec, Polarity, SourceSpec, SynthSpec};

/// REVERB replica: 6 extractors over 2407 world triples (≈616 true /
/// 1791 false), low precision and recall.
///
/// Correlation structure (§5.1): on true triples one group of 2 and one
/// group of 3 strongly correlated; on false triples two correlated pairs
/// and one source anti-correlated with the others.
pub fn reverb(seed: u64) -> Result<Dataset> {
    let sources = vec![
        SourceSpec::named("reverb-args1", 0.60, 0.34),
        SourceSpec::named("reverb-args2", 0.56, 0.30),
        SourceSpec::named("reverb-rel", 0.63, 0.42),
        SourceSpec::named("reverb-pos", 0.58, 0.38),
        SourceSpec::named("reverb-chunk", 0.68, 0.27),
        SourceSpec::named("reverb-ner", 0.45, 0.50),
    ];
    // World sized so that the *post-filter* dataset (triples with at least
    // one provider) lands near the paper's 616 true / 1791 false gold
    // standard: true triples survive at ~0.9, false at ~0.3.
    let spec = SynthSpec {
        n_triples: 2600,
        true_fraction: 0.28,
        sources,
        groups: vec![
            GroupSpec {
                members: vec![0, 1],
                polarity: Polarity::TrueTriples,
                kind: GroupKind::Positive { strength: 0.6 },
            },
            GroupSpec {
                members: vec![2, 3, 4],
                polarity: Polarity::TrueTriples,
                kind: GroupKind::Positive { strength: 0.55 },
            },
            GroupSpec {
                members: vec![0, 2],
                polarity: Polarity::FalseTriples,
                kind: GroupKind::Positive { strength: 0.65 },
            },
            GroupSpec {
                members: vec![1, 3],
                polarity: Polarity::FalseTriples,
                kind: GroupKind::Positive { strength: 0.65 },
            },
            GroupSpec {
                members: vec![4, 5],
                polarity: Polarity::FalseTriples,
                kind: GroupKind::Complementary { strength: 0.75 },
            },
        ],
        seed,
    };
    generate(&spec)
}

/// RESTAURANT replica: 7 listing services over 93 gold triples (≈68 true /
/// 25 false), all high precision, most high recall.
///
/// Correlation structure (§5.1): a group of 4 correlated and one pair
/// anti-correlated on true triples; a group of 6 correlated on false
/// triples.
pub fn restaurant(seed: u64) -> Result<Dataset> {
    let sources = vec![
        SourceSpec::named("Yelp", 0.95, 0.85),
        SourceSpec::named("Foursquare", 0.93, 0.80),
        SourceSpec::named("OpenTable", 0.96, 0.75),
        SourceSpec::named("MechanicalTurk", 0.82, 0.55),
        SourceSpec::named("YellowPages", 0.86, 0.70),
        SourceSpec::named("CitySearch", 0.88, 0.65),
        SourceSpec::named("MenuPages", 0.97, 0.60),
    ];
    // World sized so the post-filter gold standard lands near the paper's
    // 68 true / 25 false (false triples survive the >=1-provider filter at
    // roughly 55%, true at ~99%).
    let spec = SynthSpec {
        n_triples: 140,
        true_fraction: 0.50,
        sources,
        groups: vec![
            GroupSpec {
                members: vec![0, 1, 2, 3],
                polarity: Polarity::TrueTriples,
                kind: GroupKind::Positive { strength: 0.75 },
            },
            GroupSpec {
                members: vec![4, 5],
                polarity: Polarity::TrueTriples,
                kind: GroupKind::Complementary { strength: 0.8 },
            },
            GroupSpec {
                members: vec![0, 1, 2, 3, 4, 5],
                polarity: Polarity::FalseTriples,
                kind: GroupKind::Positive { strength: 0.7 },
            },
        ],
        seed,
    };
    generate(&spec)
}

/// Knobs for the BOOK replica generator.
#[derive(Debug, Clone)]
pub struct BookConfig {
    /// Number of books (objects) in the gold standard.
    pub n_books: usize,
    /// Number of seller sources active on the gold standard.
    pub n_sources: usize,
    /// Probability a clique member copies its clique master's opinion.
    pub copy_strength: f64,
    /// Tag triples with per-book domains so seller scopes are respected.
    pub with_scopes: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BookConfig {
    fn default() -> Self {
        BookConfig {
            n_books: 225,
            n_sources: 333,
            copy_strength: 0.85,
            with_scopes: true,
            seed: 2014,
        }
    }
}

/// Member lists of the copying cliques, mirroring §5.1: true-polarity
/// cliques of sizes {22, 3, 2}; false-polarity cliques of sizes
/// {22, 3, 2, 2}; the two 22-cliques share exactly two sources.
fn book_cliques(n_sources: usize) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    assert!(n_sources >= 60, "book replica needs >= 60 sources");
    let true_cliques = vec![(0..22).collect::<Vec<_>>(), vec![22, 23, 24], vec![25, 26]];
    // Shares members 20, 21 with the big true clique.
    let mut false22 = vec![20, 21];
    false22.extend(27..47);
    let false_cliques = vec![false22, vec![47, 48, 49], vec![50, 51], vec![52, 53]];
    (true_cliques, false_cliques)
}

/// One book's candidate world: true authors and false candidates.
#[derive(Debug, Clone)]
struct BookWorld {
    true_authors: Vec<String>,
    false_authors: Vec<String>,
}

/// A clique master's opinion on one book: which true / false authors it
/// would list.
#[derive(Debug, Clone, Default)]
struct Opinion {
    true_picks: Vec<bool>,
    false_picks: Vec<bool>,
}

/// BOOK replica: multi-valued truth (books with 1–3 authors), hundreds of
/// low-recall sellers with widely varying precision, and copying cliques.
pub fn book(config: &BookConfig) -> Result<Dataset> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_books = config.n_books;
    let n_sources = config.n_sources;

    // World: per-book true authors (avg ≈ 2.1 → ≈ 482 true triples for 225
    // books) and false candidates (avg ≈ 4.15 → ≈ 935 false triples).
    let worlds: Vec<BookWorld> = (0..n_books)
        .map(|b| {
            let roll: f64 = rng.gen_f64();
            let n_true = if roll < 0.25 {
                1
            } else if roll < 0.65 {
                2
            } else {
                3
            };
            let n_false = 2 + (rng.gen_f64() * 5.0).floor() as usize; // 2..=6
            BookWorld {
                true_authors: (0..n_true).map(|k| format!("author-{b}-{k}")).collect(),
                false_authors: (0..n_false).map(|k| format!("wrong-{b}-{k}")).collect(),
            }
        })
        .collect();

    // Source accuracy: wide spread (squared uniform biases low, matching
    // "large variations in precision ... most have low recall").
    let accuracy: Vec<f64> = (0..n_sources)
        .map(|_| {
            let u: f64 = rng.gen_f64();
            0.25 + 0.73 * u.sqrt()
        })
        .collect();

    let (true_cliques, false_cliques) = book_cliques(n_sources);
    let mut clique_true_of = vec![usize::MAX; n_sources];
    for (c, members) in true_cliques.iter().enumerate() {
        for &m in members {
            clique_true_of[m] = c;
        }
    }
    let mut clique_false_of = vec![usize::MAX; n_sources];
    for (c, members) in false_cliques.iter().enumerate() {
        for &m in members {
            clique_false_of[m] = c;
        }
    }

    // Book pools: clique members draw their coverage from a shared pool so
    // they overlap; independents draw from all books.
    let pool = |size: usize, rng: &mut StdRng| -> Vec<usize> {
        let mut picks: Vec<usize> = (0..n_books).collect();
        for i in 0..size.min(n_books) {
            let j = rng.gen_range(i..n_books);
            picks.swap(i, j);
        }
        picks.truncate(size.min(n_books));
        picks
    };
    let true_pools: Vec<Vec<usize>> = true_cliques.iter().map(|_| pool(80, &mut rng)).collect();
    let false_pools: Vec<Vec<usize>> = false_cliques.iter().map(|_| pool(80, &mut rng)).collect();

    // Master opinions per clique per book.
    let master_opinion = |world: &BookWorld, rng: &mut StdRng| -> Opinion {
        Opinion {
            true_picks: world
                .true_authors
                .iter()
                .map(|_| rng.gen_bool(0.8))
                .collect(),
            false_picks: world
                .false_authors
                .iter()
                .map(|_| rng.gen_bool(0.12))
                .collect(),
        }
    };
    let true_masters: Vec<Vec<Opinion>> = true_cliques
        .iter()
        .map(|_| worlds.iter().map(|w| master_opinion(w, &mut rng)).collect())
        .collect();
    let false_masters: Vec<Vec<Opinion>> = false_cliques
        .iter()
        .map(|_| worlds.iter().map(|w| master_opinion(w, &mut rng)).collect())
        .collect();

    // Assemble observations.
    let mut builder = DatasetBuilder::new();
    let source_ids: Vec<_> = (0..n_sources)
        .map(|i| builder.source(format!("seller-{i:03}")))
        .collect();

    // Pre-intern all candidate triples per book lazily; only observed ones
    // are added (builder rejects unprovided interned triples, so intern on
    // first observation).
    let mut triple_of = std::collections::HashMap::new();
    let observe =
        |builder: &mut DatasetBuilder,
         triple_of: &mut std::collections::HashMap<(usize, String), corrfuse_core::TripleId>,
         src: usize,
         b: usize,
         author: &str,
         truth: bool| {
            let key = (b, author.to_string());
            let t = *triple_of.entry(key).or_insert_with(|| {
                let t = builder.triple(format!("book-{b:03}"), "author", author);
                builder.label(t, truth);
                if config.with_scopes {
                    builder.set_domain(t, Domain(b as u32));
                }
                t
            });
            builder.observe(source_ids[src], t);
        };

    for src in 0..n_sources {
        let tc = clique_true_of[src];
        let fc = clique_false_of[src];
        // Coverage size: geometric-ish. Clique members mirror large chunks
        // of their master's catalogue (copiers replicate listings), so
        // their coverage is larger and concentrated in the clique pool.
        let in_clique = tc != usize::MAX || fc != usize::MAX;
        let (mut cover, cap, p_grow) = if in_clique {
            (18usize, 50usize, 0.85)
        } else {
            (3usize, 40usize, 0.82)
        };
        while cover < cap && rng.gen_bool(p_grow) {
            cover += 1;
        }
        // Draw covered books, biased to clique pools when applicable.
        let mut books: Vec<usize> = Vec::with_capacity(cover);
        for _ in 0..cover {
            let b = if tc != usize::MAX && rng.gen_bool(0.8) {
                true_pools[tc][rng.gen_range(0..true_pools[tc].len())]
            } else if fc != usize::MAX && rng.gen_bool(0.8) {
                false_pools[fc][rng.gen_range(0..false_pools[fc].len())]
            } else {
                rng.gen_range(0..n_books)
            };
            if !books.contains(&b) {
                books.push(b);
            }
        }

        let acc = accuracy[src];
        for &b in &books {
            let world = &worlds[b];
            // True-author picks: copy clique master or own opinion.
            let copy_true = tc != usize::MAX && rng.gen_bool(config.copy_strength);
            for (k, author) in world.true_authors.iter().enumerate() {
                let provide = if copy_true {
                    true_masters[tc][b].true_picks[k]
                } else {
                    rng.gen_bool(acc * 0.8)
                };
                if provide {
                    observe(&mut builder, &mut triple_of, src, b, author, true);
                }
            }
            // False-author picks.
            let copy_false = fc != usize::MAX && rng.gen_bool(config.copy_strength);
            for (k, author) in world.false_authors.iter().enumerate() {
                let provide = if copy_false {
                    false_masters[fc][b].false_picks[k]
                } else {
                    rng.gen_bool((1.0 - acc) * 0.3)
                };
                if provide {
                    observe(&mut builder, &mut triple_of, src, b, author, false);
                }
            }
        }
    }

    builder.build()
}

/// BOOK replica with the default configuration.
pub fn book_default() -> Result<Dataset> {
    book(&BookConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_core::quality::QualityEstimator;

    #[test]
    fn reverb_shape() {
        let ds = reverb(1).unwrap();
        assert_eq!(ds.n_sources(), 6);
        let g = ds.gold().unwrap();
        // World: 2407 triples, 616 true; some drop to no-provider filtering.
        assert!(ds.n_triples() > 1200, "{}", ds.n_triples());
        assert!(ds.n_triples() <= 2407);
        let frac = g.true_count() as f64 / g.labelled_count() as f64;
        assert!(
            (0.18..=0.45).contains(&frac),
            "true fraction {frac} ({}/{})",
            g.true_count(),
            g.labelled_count()
        );
        // Low-quality band.
        let q = QualityEstimator::new().estimate(&ds, g).unwrap();
        for sq in &q {
            assert!(sq.precision < 0.75, "reverb precision {}", sq.precision);
            assert!(sq.recall < 0.75, "reverb recall {}", sq.recall);
        }
    }

    #[test]
    fn restaurant_shape() {
        let ds = restaurant(1).unwrap();
        assert_eq!(ds.n_sources(), 7);
        assert_eq!(ds.source_name(corrfuse_core::SourceId(0)), "Yelp");
        let g = ds.gold().unwrap();
        assert!(
            ds.n_triples() >= 70 && ds.n_triples() <= 93,
            "{}",
            ds.n_triples()
        );
        // High precision band.
        let q = QualityEstimator::new().estimate(&ds, g).unwrap();
        let high_p = q.iter().filter(|sq| sq.precision > 0.8).count();
        assert!(high_p >= 5, "most restaurant sources high precision");
    }

    #[test]
    fn book_shape() {
        // Use the unscoped variant so recall is computed globally, matching
        // the paper's "most sellers have low recall" characterisation.
        let ds = book(&BookConfig {
            with_scopes: false,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(ds.n_sources(), 333);
        let g = ds.gold().unwrap();
        // Target 482 true / 935 false; allow generation slack.
        assert!(
            (300..=650).contains(&g.true_count()),
            "true {}",
            g.true_count()
        );
        assert!(
            (500..=1400).contains(&g.false_count()),
            "false {}",
            g.false_count()
        );
        // Low global recall for most sellers.
        let q = QualityEstimator::new().estimate(&ds, g).unwrap();
        let low_recall = q.iter().filter(|sq| sq.recall < 0.2).count();
        assert!(
            low_recall as f64 > 0.8 * 333.0,
            "most sellers low recall ({low_recall})"
        );
        // Precision spread is wide.
        let min_p = q
            .iter()
            .filter(|sq| sq.precision > 0.0)
            .map(|sq| sq.precision)
            .fold(1.0, f64::min);
        let max_p = q.iter().map(|sq| sq.precision).fold(0.0, f64::max);
        assert!(max_p - min_p > 0.4, "precision spread [{min_p}, {max_p}]");
    }

    #[test]
    fn book_scoped_variant_builds_domains() {
        let cfg = BookConfig {
            n_books: 40,
            n_sources: 80,
            with_scopes: true,
            ..Default::default()
        };
        let ds = book(&cfg).unwrap();
        // Scoped: some (source, triple) pairs are out of scope.
        let mut any_out_of_scope = false;
        'outer: for s in ds.sources() {
            for t in ds.triples() {
                if !ds.in_scope(s, t) {
                    any_out_of_scope = true;
                    break 'outer;
                }
            }
        }
        assert!(any_out_of_scope);
    }

    #[test]
    fn replicas_are_deterministic_per_seed() {
        let a = reverb(7).unwrap();
        let b = reverb(7).unwrap();
        assert_eq!(a.n_triples(), b.n_triples());
        let c = reverb(8).unwrap();
        assert!(
            a.n_triples() != c.n_triples() || {
                a.triples().any(|t| {
                    a.providers(t).iter_ones().collect::<Vec<_>>()
                        != c.providers(t).iter_ones().collect::<Vec<_>>()
                })
            }
        );
    }

    #[test]
    fn book_cliques_match_published_sizes() {
        let (t, f) = book_cliques(333);
        let mut ts: Vec<usize> = t.iter().map(Vec::len).collect();
        ts.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(ts, vec![22, 3, 2]);
        let mut fs: Vec<usize> = f.iter().map(Vec::len).collect();
        fs.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(fs, vec![22, 3, 2, 2]);
        // Overlap between the two 22-cliques is exactly 2 sources.
        let big_t: std::collections::HashSet<_> = t[0].iter().collect();
        let shared = f[0].iter().filter(|m| big_t.contains(m)).count();
        assert_eq!(shared, 2);
    }
}
