//! Event-stream workloads for the streaming subsystem (`corrfuse-stream`).
//!
//! [`event_stream`] slices a generated world ([`crate::generator`]) into a
//! seed snapshot plus micro-batches of ingest events: the remaining
//! triples arrive as `AddTriple` + `Claim` groups in a shuffled order,
//! a configurable fraction of them receive (possibly deferred) `Label`
//! events, and brand-new sources can join mid-stream. Replaying all
//! batches accumulates exactly the triples of the generated world (plus
//! any live-source claims), which makes this the workload behind both the
//! incremental-vs-batch equivalence property test and the streaming
//! throughput bench.

use corrfuse_core::dataset::{Dataset, DatasetBuilder, SourceId};
use corrfuse_core::error::{FusionError, Result};
use corrfuse_core::rng::StdRng;
use corrfuse_core::triple::TripleId;
use corrfuse_stream::Event;

use crate::generator::{generate, SynthSpec};

/// Specification of a streamed workload.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// The world to generate and then stream.
    pub base: SynthSpec,
    /// Fraction of the world's triples in the seed snapshot (clamped so
    /// both sides are non-empty and the seed carries a true and a false
    /// label).
    pub seed_fraction: f64,
    /// Number of micro-batches the remaining triples are split into.
    pub n_batches: usize,
    /// Probability a streamed triple receives a `Label` event (in its own
    /// batch or deferred up to two batches later).
    pub label_fraction: f64,
    /// When `Some(k)`, every `k`-th batch opens with a brand-new source
    /// that claims each subsequent streamed triple with probability 0.4.
    pub add_source_every: Option<usize>,
    /// RNG seed for the stream's shuffling/assignment (independent of
    /// `base.seed`, which fixes the world itself).
    pub seed: u64,
}

impl StreamSpec {
    /// A small default workload over `base`: half the world seeds the
    /// session, the rest streams in `n_batches` batches, 30% labelled.
    pub fn new(base: SynthSpec, n_batches: usize, seed: u64) -> Self {
        StreamSpec {
            base,
            seed_fraction: 0.5,
            n_batches,
            label_fraction: 0.3,
            add_source_every: None,
            seed,
        }
    }
}

/// Generate the world and slice it into `(seed dataset, event batches)`.
pub fn event_stream(spec: &StreamSpec) -> Result<(Dataset, Vec<Vec<Event>>)> {
    if spec.n_batches == 0 {
        return Err(FusionError::DegenerateTraining("batches"));
    }
    crate::check_fraction("seed_fraction", spec.seed_fraction)?;
    if !(0.0..=1.0).contains(&spec.label_fraction) {
        return Err(FusionError::InvalidProbability {
            what: "label_fraction",
            value: spec.label_fraction,
        });
    }
    let full = generate(&spec.base)?;
    let gold = full.gold().expect("generator labels every triple");
    let n = full.n_triples();
    if n < 2 {
        return Err(FusionError::DegenerateTraining("triples"));
    }
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Shuffled triple order; the seed takes a prefix. The generator lays
    // out true triples first, so without the shuffle a prefix seed would
    // be single-class.
    let mut order: Vec<TripleId> = full.triples().collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..i + 1));
    }
    let n_seed = (((n as f64) * spec.seed_fraction).round() as usize).clamp(1, n - 1);
    // Force one true and one false label into the seed prefix.
    for want in [true, false] {
        if !order[..n_seed].iter().any(|&t| gold.get(t) == Some(want)) {
            let from = order[n_seed..]
                .iter()
                .position(|&t| gold.get(t) == Some(want))
                .expect("generator produces both classes");
            let swap_at = rng.gen_range(0..n_seed);
            order.swap(swap_at, n_seed + from);
        }
    }

    // Seed snapshot: every base source (so stream claims resolve by id),
    // the prefix triples with their claims and labels.
    let mut b = DatasetBuilder::new();
    for s in full.sources() {
        b.source(full.source_name(s));
    }
    for &t in &order[..n_seed] {
        let triple = full.triple(t);
        let id = b.triple(
            triple.subject.clone(),
            triple.predicate.clone(),
            triple.object.clone(),
        );
        b.set_domain(id, full.domain(t));
        for s in full.providers(t).iter_ones() {
            b.observe(SourceId(s as u32), id);
        }
        b.label(id, gold.get(t).expect("generator labels every triple"));
    }
    let seed_ds = b.build()?;

    // Stream batches. Session triple ids continue after the seed.
    let streamed = &order[n_seed..];
    let mut batches: Vec<Vec<Event>> = vec![Vec::new(); spec.n_batches];
    let mut deferred: Vec<(usize, Event)> = Vec::new();
    let mut live_sources: Vec<(usize, SourceId)> = Vec::new(); // (intro batch, id)
    if let Some(k) = spec.add_source_every {
        let k = k.max(1);
        let intro_batches = (0..spec.n_batches).step_by(k).skip(1);
        for (next_id, batch) in (full.n_sources() as u32..).zip(intro_batches) {
            batches[batch].push(Event::add_source(format!("live-S{next_id}")));
            live_sources.push((batch, SourceId(next_id)));
        }
    }
    for (j, &t) in streamed.iter().enumerate() {
        let batch = j * spec.n_batches / streamed.len();
        let session_id = TripleId((n_seed + j) as u32);
        let triple = full.triple(t);
        batches[batch].push(Event::AddTriple {
            triple: triple.clone(),
            domain: full.domain(t),
        });
        for s in full.providers(t).iter_ones() {
            batches[batch].push(Event::claim(SourceId(s as u32), session_id));
        }
        for &(intro, live) in &live_sources {
            if intro <= batch && rng.gen_bool(0.4) {
                batches[batch].push(Event::claim(live, session_id));
            }
        }
        if spec.label_fraction > 0.0 && rng.gen_bool(spec.label_fraction) {
            let delay = rng.gen_range(0..3);
            let at = (batch + delay).min(spec.n_batches - 1);
            deferred.push((
                at,
                Event::label(session_id, gold.get(t).expect("labelled world")),
            ));
        }
    }
    // Labels land at the end of their batch: always after the claims of
    // same-batch triples, trivially after earlier batches.
    for (at, ev) in deferred {
        batches[at].push(ev);
    }
    Ok((seed_ds, batches))
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_core::engine::ScoringEngine;
    use corrfuse_core::fuser::{Fuser, FuserConfig, Method};
    use corrfuse_stream::{replay, StreamSession};

    fn spec() -> StreamSpec {
        StreamSpec {
            base: SynthSpec::uniform(4, 0.8, 0.5, 300, 0.5, 11),
            seed_fraction: 0.5,
            n_batches: 4,
            label_fraction: 0.4,
            add_source_every: Some(2),
            seed: 7,
        }
    }

    #[test]
    fn stream_accumulates_back_to_the_world() {
        let (seed, batches) = event_stream(&spec()).unwrap();
        assert_eq!(batches.len(), 4);
        let events: Vec<_> = batches.concat();
        let accumulated = replay::accumulate(&seed, &events).unwrap();
        let world = generate(&spec().base).unwrap();
        // Every world triple arrived exactly once.
        assert_eq!(accumulated.n_triples(), world.n_triples());
        // Live sources joined.
        assert!(accumulated.n_sources() > world.n_sources());
        // Seed carries both label classes.
        let g = seed.gold().unwrap();
        assert!(g.true_count() > 0 && g.false_count() > 0);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let (_, a) = event_stream(&spec()).unwrap();
        let (_, b) = event_stream(&spec()).unwrap();
        assert_eq!(a, b);
        let mut other = spec();
        other.seed = 8;
        let (_, c) = event_stream(&other).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn session_over_stream_matches_batch_fit() {
        let (seed, batches) = event_stream(&spec()).unwrap();
        let config = FuserConfig::new(Method::Exact);
        let mut session =
            StreamSession::with_engine(config.clone(), seed.clone(), ScoringEngine::serial())
                .unwrap();
        for batch in &batches {
            session.ingest(batch).unwrap();
        }
        let accumulated = replay::accumulate(&seed, session.delta_log().events()).unwrap();
        let fresh = Fuser::fit(&config, &accumulated, accumulated.gold().unwrap()).unwrap();
        let scores = fresh.score_all(&accumulated).unwrap();
        for (a, b) in session.scores().iter().zip(&scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = spec();
        s.n_batches = 0;
        assert!(event_stream(&s).is_err());
        let mut s = spec();
        s.seed_fraction = 1.5;
        assert!(event_stream(&s).is_err());
        let mut s = spec();
        s.label_fraction = -0.1;
        assert!(event_stream(&s).is_err());
    }
}
