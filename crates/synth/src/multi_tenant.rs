//! Multi-tenant event-stream workloads for the serving subsystem
//! (`corrfuse-serve`).
//!
//! [`multi_tenant_events`] builds one independent streamed world per
//! tenant (via [`crate::stream_events`]) and interleaves the tenants'
//! micro-batches into a single arrival-ordered message sequence. Tenant
//! sizes follow a Zipf-like skew — a few heavy tenants, a long tail of
//! light ones — which is the shape that makes shard routing interesting:
//! hashing tenants to shards must tolerate hot shards, and per-shard
//! sessions stay much smaller than one session holding every tenant.
//!
//! Tenant ids are plain `u32`s (dense, `0..n_tenants`) so this module
//! does not depend on the serving crate; the router wraps them in its own
//! `TenantId` newtype. Each tenant's stream is fully self-contained:
//! source/triple ids inside its events are tenant-local, exactly as a
//! tenant-facing ingestion API would receive them.

use corrfuse_core::dataset::Dataset;
use corrfuse_core::error::{FusionError, Result};
use corrfuse_core::rng::StdRng;
use corrfuse_stream::Event;

use crate::stream_events::{event_stream, StreamSpec};
use crate::SynthSpec;

/// Specification of a multi-tenant streamed workload.
#[derive(Debug, Clone)]
pub struct MultiTenantSpec {
    /// Number of tenants (ids `0..n_tenants`).
    pub n_tenants: usize,
    /// World triples for the largest tenant; tenant `t` gets roughly
    /// `triples_largest / (t+1)^skew`, floored at 40 so every tenant's
    /// world still trains.
    pub triples_largest: usize,
    /// Zipf exponent for the tenant-size decay (`0` = uniform sizes).
    pub skew: f64,
    /// Sources per tenant.
    pub n_sources: usize,
    /// Micro-batches for the largest tenant; smaller tenants scale down
    /// proportionally (floored at 2).
    pub batches_largest: usize,
    /// Probability a streamed triple receives a `Label` event.
    pub label_fraction: f64,
    /// RNG seed (fixes tenant worlds, per-tenant streams, and the
    /// interleaving).
    pub seed: u64,
}

impl MultiTenantSpec {
    /// A moderately skewed default workload.
    pub fn new(n_tenants: usize, triples_largest: usize, seed: u64) -> Self {
        MultiTenantSpec {
            n_tenants,
            triples_largest,
            skew: 1.0,
            n_sources: 4,
            batches_largest: 6,
            label_fraction: 0.3,
            seed,
        }
    }
}

/// A generated multi-tenant workload.
#[derive(Debug, Clone)]
pub struct MultiTenantStream {
    /// Per-tenant seed snapshots (labelled), in tenant-id order.
    pub seeds: Vec<(u32, Dataset)>,
    /// Interleaved arrival-ordered messages: one tenant's micro-batch of
    /// tenant-local events each. Per-tenant relative order is preserved.
    pub messages: Vec<(u32, Vec<Event>)>,
}

impl MultiTenantStream {
    /// Total events across all messages.
    pub fn n_events(&self) -> usize {
        self.messages.iter().map(|(_, b)| b.len()).sum()
    }

    /// The messages of one tenant, in order.
    pub fn tenant_messages(&self, tenant: u32) -> impl Iterator<Item = &[Event]> {
        self.messages
            .iter()
            .filter(move |(t, _)| *t == tenant)
            .map(|(_, b)| b.as_slice())
    }
}

/// Generate per-tenant worlds and interleave their event streams. See the
/// module docs.
pub fn multi_tenant_events(spec: &MultiTenantSpec) -> Result<MultiTenantStream> {
    if spec.n_tenants == 0 {
        return Err(FusionError::DegenerateTraining("tenants"));
    }
    if !spec.skew.is_finite() || spec.skew < 0.0 {
        return Err(FusionError::InvalidProbability {
            what: "skew",
            value: spec.skew,
        });
    }
    if spec.triples_largest < 40 {
        return Err(FusionError::DegenerateTraining("triples"));
    }
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x6d74_7374_7265_616d); // "mtstream"

    let mut seeds: Vec<(u32, Dataset)> = Vec::with_capacity(spec.n_tenants);
    let mut per_tenant: Vec<Vec<Vec<Event>>> = Vec::with_capacity(spec.n_tenants);
    for t in 0..spec.n_tenants {
        let shrink = ((t + 1) as f64).powf(spec.skew);
        let n_triples = ((spec.triples_largest as f64 / shrink).round() as usize).max(40);
        let n_batches = (spec.batches_largest * n_triples / spec.triples_largest)
            .clamp(2, spec.batches_largest.max(2));
        // Per-tenant quality variation, so shards host genuinely
        // different models.
        let precision = 0.7 + 0.2 * rng.gen_f64();
        let recall = 0.35 + 0.25 * rng.gen_f64();
        let world_seed = spec.seed.wrapping_mul(1_000_003).wrapping_add(t as u64);
        let stream = StreamSpec {
            base: SynthSpec::uniform(
                spec.n_sources,
                precision,
                recall,
                n_triples,
                0.5,
                world_seed,
            ),
            seed_fraction: 0.4 + 0.2 * rng.gen_f64(),
            n_batches,
            label_fraction: spec.label_fraction,
            // Every third tenant grows a brand-new source mid-stream, so
            // routed shards also exercise the full-refit fallback.
            add_source_every: if t % 3 == 2 { Some(2) } else { None },
            seed: world_seed.rotate_left(17),
        };
        let (seed_ds, batches) = event_stream(&stream)?;
        seeds.push((t as u32, seed_ds));
        per_tenant.push(batches);
    }

    // Weighted-random interleave preserving per-tenant batch order: at
    // each step, pick the next message among tenants with batches left,
    // weighted by how many they still have (heavy tenants arrive more
    // often, like real traffic).
    let mut cursors = vec![0usize; spec.n_tenants];
    let mut remaining: usize = per_tenant.iter().map(Vec::len).sum();
    let mut messages: Vec<(u32, Vec<Event>)> = Vec::with_capacity(remaining);
    while remaining > 0 {
        let mut pick = rng.gen_range(0..remaining);
        let tenant = (0..spec.n_tenants)
            .find(|&t| {
                let left = per_tenant[t].len() - cursors[t];
                if pick < left {
                    true
                } else {
                    pick -= left;
                    false
                }
            })
            .expect("weights sum to remaining");
        let batch = std::mem::take(&mut per_tenant[tenant][cursors[tenant]]);
        cursors[tenant] += 1;
        remaining -= 1;
        messages.push((tenant as u32, batch));
    }
    Ok(MultiTenantStream { seeds, messages })
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfuse_stream::replay;

    fn spec() -> MultiTenantSpec {
        MultiTenantSpec::new(5, 160, 42)
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a = multi_tenant_events(&spec()).unwrap();
        let b = multi_tenant_events(&spec()).unwrap();
        assert_eq!(a.messages, b.messages);
        let mut other = spec();
        other.seed = 43;
        let c = multi_tenant_events(&other).unwrap();
        assert_ne!(a.messages, c.messages);
    }

    #[test]
    fn tenant_sizes_are_skewed() {
        let s = multi_tenant_events(&spec()).unwrap();
        assert_eq!(s.seeds.len(), 5);
        let n0 = s.seeds[0].1.n_triples();
        let n4 = s.seeds[4].1.n_triples();
        assert!(
            n0 > n4,
            "tenant 0 seed ({n0} triples) should dominate tenant 4 ({n4})"
        );
        assert!(s.n_events() > 0);
    }

    #[test]
    fn per_tenant_streams_accumulate_independently() {
        let s = multi_tenant_events(&spec()).unwrap();
        for (tenant, seed_ds) in &s.seeds {
            let events: Vec<Event> = s
                .tenant_messages(*tenant)
                .flat_map(|b| b.iter().cloned())
                .collect();
            let accumulated = replay::accumulate(seed_ds, &events).unwrap();
            assert!(accumulated.n_triples() > seed_ds.n_triples());
            // Both label classes survive for training.
            let gold = accumulated.gold().unwrap();
            assert!(gold.true_count() > 0 && gold.false_count() > 0);
        }
    }

    #[test]
    fn interleave_preserves_per_tenant_order() {
        let s = multi_tenant_events(&spec()).unwrap();
        // Rebuild each tenant's stream directly and compare against the
        // filtered interleaved view.
        let direct = multi_tenant_events(&spec()).unwrap();
        for (tenant, _) in &s.seeds {
            let a: Vec<&[Event]> = s.tenant_messages(*tenant).collect();
            let b: Vec<&[Event]> = direct.tenant_messages(*tenant).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = spec();
        s.n_tenants = 0;
        assert!(multi_tenant_events(&s).is_err());
        let mut s = spec();
        s.skew = -1.0;
        assert!(multi_tenant_events(&s).is_err());
        let mut s = spec();
        s.triples_largest = 10;
        assert!(multi_tenant_events(&s).is_err());
    }
}
