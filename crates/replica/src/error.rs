//! Error type for the replication layer.

use std::fmt;

use corrfuse_net::NetError;
use corrfuse_serve::ServeError;

/// Errors produced by followers and their replication links.
#[derive(Debug)]
pub enum ReplicaError {
    /// A transport or protocol-codec failure on the leader link.
    Net(NetError),
    /// A serving-layer failure: bounded-staleness reads surface
    /// [`ServeError::Stale`] here, unknown tenants
    /// [`ServeError::UnknownTenant`], and session/journal problems the
    /// underlying [`corrfuse_core::error::FusionError`].
    Serve(ServeError),
    /// The leader violated the replication protocol (an out-of-sequence
    /// `BATCH` epoch, a malformed batch payload, an unexpected frame).
    /// The follower drops the connection and resubscribes.
    Protocol(String),
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::Net(e) => write!(f, "{e}"),
            ReplicaError::Serve(e) => write!(f, "{e}"),
            ReplicaError::Protocol(msg) => write!(f, "replication protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ReplicaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplicaError::Net(e) => Some(e),
            ReplicaError::Serve(e) => Some(e),
            ReplicaError::Protocol(_) => None,
        }
    }
}

impl From<NetError> for ReplicaError {
    fn from(e: NetError) -> Self {
        ReplicaError::Net(e)
    }
}

impl From<ServeError> for ReplicaError {
    fn from(e: ServeError) -> Self {
        ReplicaError::Serve(e)
    }
}

impl From<corrfuse_core::error::FusionError> for ReplicaError {
    fn from(e: corrfuse_core::error::FusionError) -> Self {
        ReplicaError::Serve(ServeError::Fusion(e))
    }
}

impl From<std::io::Error> for ReplicaError {
    fn from(e: std::io::Error) -> Self {
        ReplicaError::Net(NetError::from(e))
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ReplicaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error as _;
        let stale = ReplicaError::Serve(ServeError::Stale {
            shard: 1,
            epoch: 3,
            min_epoch: 7,
        });
        assert!(stale.to_string().contains("stale"));
        assert!(stale.source().is_some());
        let proto = ReplicaError::Protocol("epoch gap".to_string());
        assert!(proto.to_string().contains("epoch gap"));
        assert!(proto.source().is_none());
    }
}
