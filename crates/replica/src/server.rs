//! The read-only TCP front door of a [`Follower`]: the same
//! `corrfuse-net v1` protocol as the leader's server, restricted to
//! queries. `SCORES`/`DECISIONS`/`STATS` honour the `min_epoch`
//! bounded-staleness field (a shard still behind answers the retryable
//! `STALE` error); every mutating request (`INGEST`, `FLUSH`,
//! `SHUTDOWN`, `SUBSCRIBE`) is refused with `FORBIDDEN` — followers are
//! read-only, and chained replication is out of scope.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use corrfuse_net::error::code_of;
use corrfuse_net::frame::VERSION;
use corrfuse_net::sync::Semaphore;
use corrfuse_net::wire::{WireMetric, WireShardStats, WireStats};
use corrfuse_net::{ErrorCode, Frame, NetError, Request, Response};
use corrfuse_obs::{MetricSample, MetricValue};

use crate::error::{ReplicaError, Result};
use crate::follower::Follower;

/// Follower server configuration.
#[derive(Debug, Clone)]
pub struct FollowerServerConfig {
    /// Maximum concurrently served connections.
    pub max_connections: usize,
}

impl Default for FollowerServerConfig {
    fn default() -> Self {
        FollowerServerConfig {
            max_connections: 64,
        }
    }
}

impl FollowerServerConfig {
    /// The defaults: 64 connections.
    pub fn new() -> FollowerServerConfig {
        FollowerServerConfig::default()
    }

    /// Set the connection bound.
    pub fn with_max_connections(mut self, n: usize) -> FollowerServerConfig {
        self.max_connections = n;
        self
    }
}

/// A handle that can stop a running [`FollowerServer`].
#[derive(Debug, Clone)]
pub struct FollowerServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl FollowerServerHandle {
    /// Ask the server to stop; live connections close once their
    /// in-flight request finishes.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&wake_addr(self.addr), Duration::from_millis(250));
    }

    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// The follower's read-only network front door; see the module docs.
#[derive(Debug)]
pub struct FollowerServer {
    listener: TcpListener,
    follower: Arc<Follower>,
    config: FollowerServerConfig,
    stop: Arc<AtomicBool>,
}

impl FollowerServer {
    /// Bind to `addr` (port 0 for ephemeral) and serve reads from
    /// `follower`. The follower stays shared: in-process reads keep
    /// working next to the network traffic.
    pub fn bind(
        addr: impl ToSocketAddrs,
        follower: Arc<Follower>,
        config: FollowerServerConfig,
    ) -> Result<FollowerServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(FollowerServer {
            listener,
            follower,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr().map_err(NetError::from)?)
    }

    /// A stop handle, safe to move to another thread.
    pub fn handle(&self) -> Result<FollowerServerHandle> {
        Ok(FollowerServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr()?,
        })
    }

    /// Serve until stopped (same accept-semaphore scheme as the
    /// leader's [`corrfuse_net::Server`]).
    pub fn serve(self) -> Result<()> {
        let sem = Arc::new(Semaphore::new(self.config.max_connections));
        let mut handlers: Vec<(JoinHandle<()>, TcpStream)> = Vec::new();
        loop {
            let permit = loop {
                if self.stop.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(p) = sem.acquire_timeout(Duration::from_millis(50)) {
                    break Some(p);
                }
            };
            let Some(permit) = permit else { break };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _peer) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) if self.stop.load(Ordering::SeqCst) => break,
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            handlers.retain(|(h, _)| !h.is_finished());
            let Ok(socket) = stream.try_clone() else {
                continue;
            };
            let follower = Arc::clone(&self.follower);
            let spawned = std::thread::Builder::new()
                .name("corrfuse-replica-conn".to_string())
                .spawn(move || {
                    let _permit = permit;
                    let _ = handle_connection(stream, &follower);
                });
            match spawned {
                Ok(join) => handlers.push((join, socket)),
                Err(_) => continue,
            }
        }
        drop(self.listener);
        for (_, socket) in &handlers {
            let _ = socket.shutdown(std::net::Shutdown::Both);
        }
        for (h, _) in handlers {
            let _ = h.join();
        }
        Ok(())
    }
}

fn wake_addr(mut addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        match addr {
            SocketAddr::V4(_) => addr.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
            SocketAddr::V6(_) => addr.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
        }
    }
    addr
}

/// Serve one connection: HELLO negotiation, then read-only requests.
fn handle_connection(mut stream: TcpStream, follower: &Follower) -> Result<()> {
    stream.set_nodelay(true).ok();
    negotiate(&mut stream)?;
    let mut stats = (0u64, 0u64); // (frames, read queries)
    loop {
        let frame = match Frame::read_from(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()),
            Err(NetError::Frame(e)) => {
                let resp = Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                };
                resp.to_frame().write_to(&mut stream).ok();
                stream.flush().ok();
                return Err(NetError::Frame(e).into());
            }
            Err(e) => return Err(e.into()),
        };
        stats.0 += 1;
        let request = match Request::from_frame(&frame) {
            Ok(r) => r,
            Err(e) => {
                let resp = Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                };
                resp.to_frame().write_to(&mut stream)?;
                continue;
            }
        };
        let response = match request {
            Request::Hello { .. } => Response::Error {
                code: ErrorCode::Malformed,
                message: "HELLO is only valid as the first frame".to_string(),
            },
            Request::Scores { tenant, min_epoch } => {
                stats.1 += 1;
                match follower.scores_at(tenant, min_epoch.unwrap_or(0)) {
                    Ok(scores) => Response::ScoresOk { scores },
                    Err(e) => error_response(&e),
                }
            }
            Request::Decisions { tenant, min_epoch } => {
                stats.1 += 1;
                match follower.decisions_at(tenant, min_epoch.unwrap_or(0)) {
                    Ok(decisions) => Response::DecisionsOk { decisions },
                    Err(e) => error_response(&e),
                }
            }
            Request::Stats { min_epoch } => match follower.stats_at(min_epoch.unwrap_or(0)) {
                Ok(fs) => Response::StatsOk {
                    stats: wire_stats(&fs, stats.0, stats.1),
                },
                Err(e) => error_response(&e),
            },
            Request::Ping => Response::Pong,
            Request::Metrics => metrics_response(follower),
            Request::Ingest { .. } | Request::Flush | Request::Shutdown => Response::Error {
                code: ErrorCode::Forbidden,
                message: "followers are read-only; write to the leader".to_string(),
            },
            Request::Subscribe { .. } => Response::Error {
                code: ErrorCode::Forbidden,
                message: "chained replication is not supported; subscribe to the leader"
                    .to_string(),
            },
            Request::EpochAck { .. } => Response::Error {
                code: ErrorCode::Malformed,
                message: "EPOCH_ACK is only valid in replication mode".to_string(),
            },
        };
        let mut frame = response.to_frame();
        if !frame.fits() {
            frame = Response::Error {
                code: ErrorCode::Internal,
                message: frame.oversize_error().to_string(),
            }
            .to_frame();
        }
        frame.write_to(&mut stream)?;
        stream.flush()?;
    }
}

fn error_response(e: &ReplicaError) -> Response {
    match e {
        ReplicaError::Serve(e) => Response::Error {
            code: code_of(e),
            message: e.to_string(),
        },
        other => Response::Error {
            code: ErrorCode::Internal,
            message: other.to_string(),
        },
    }
}

/// Project follower statistics onto the frozen wire `STATS` shape:
/// batches/events applied through replication stand in for the leader's
/// processed/ingested counters, queues are always empty (links apply
/// synchronously), and a follower shard is never poisoned — an apply
/// failure discards it for re-bootstrap instead.
fn wire_stats(fs: &crate::follower::FollowerStats, frames: u64, queries: u64) -> WireStats {
    WireStats {
        conn_frames: frames,
        conn_batches: queries,
        conn_events: 0,
        shards: fs
            .shards
            .iter()
            .map(|s| WireShardStats {
                shard: s.shard as u32,
                tenants: s.tenants as u32,
                processed_messages: s.batches_applied,
                ingested_events: s.events_applied,
                ingest_errors: s.apply_errors,
                queue_depth: 0,
                poisoned: false,
            })
            .collect(),
    }
}

/// The follower's `METRICS` reply: the registry snapshot (when the
/// follower records metrics) plus always-present applied-epoch gauges,
/// mirroring the leader's `serve_epoch_shard_<i>` under the
/// `replica_applied_epoch_shard_<i>` names.
fn metrics_response(follower: &Follower) -> Response {
    let mut samples = follower
        .metrics_registry()
        .map(|r| r.snapshot())
        .unwrap_or_default();
    let stats = follower.stats();
    for s in &stats.shards {
        samples.push(MetricSample {
            name: format!("replica_applied_epoch_shard_{}", s.shard),
            value: MetricValue::Gauge(s.applied_epoch as i64),
        });
        samples.push(MetricSample {
            name: format!("replica_snapshots_shard_{}", s.shard),
            value: MetricValue::Counter(s.snapshots),
        });
    }
    samples.sort_by(|a, b| a.name.cmp(&b.name));
    Response::MetricsOk {
        metrics: WireMetric::from_samples(&samples),
    }
}

/// The HELLO handshake, follower-server side (identical to the
/// leader's).
fn negotiate(stream: &mut TcpStream) -> Result<()> {
    let frame = match Frame::read_from(stream)? {
        Some(f) => f,
        None => return Ok(()),
    };
    match Request::from_frame(&frame) {
        Ok(Request::Hello {
            min_version,
            max_version,
            ..
        }) => {
            if min_version <= VERSION && VERSION <= max_version {
                Response::HelloOk { version: VERSION }
                    .to_frame()
                    .write_to(stream)?;
                Ok(())
            } else {
                let resp = Response::Error {
                    code: ErrorCode::UnsupportedVersion,
                    message: format!(
                        "server speaks version {VERSION}, client offered {min_version}..={max_version}"
                    ),
                };
                resp.to_frame().write_to(stream)?;
                Err(ReplicaError::Protocol(
                    "version negotiation failed".to_string(),
                ))
            }
        }
        _ => {
            let resp = Response::Error {
                code: ErrorCode::Malformed,
                message: "the first frame on a connection must be HELLO".to_string(),
            };
            resp.to_frame().write_to(stream).ok();
            Err(ReplicaError::Protocol(
                "connection did not start with HELLO".to_string(),
            ))
        }
    }
}

/// Run a [`FollowerServer`] on a background thread.
pub fn spawn(server: FollowerServer) -> Result<(FollowerServerHandle, JoinHandle<Result<()>>)> {
    let handle = server.handle()?;
    let join = std::thread::Builder::new()
        .name("corrfuse-replica-accept".to_string())
        .spawn(move || server.serve())
        .map_err(|e| ReplicaError::Net(NetError::Io(e.to_string())))?;
    Ok((handle, join))
}
