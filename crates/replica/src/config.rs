//! Follower configuration.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use corrfuse_core::fuser::FuserConfig;
use corrfuse_obs::Registry;
use corrfuse_stream::FsyncPolicy;

/// Configuration of a [`crate::Follower`].
///
/// The fuser configuration **must match the leader's** — the trust
/// anchor (follower scores bitwise identical to the leader at the same
/// epoch) holds because both sides run the same model over the same
/// accumulated dataset; a config mismatch silently breaks it.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// The fusion model configuration, identical to the leader's.
    pub fuser: FuserConfig,
    /// Decision threshold used until (and unless) a snapshot bootstrap
    /// delivers the leader's — snapshots carry the authoritative value.
    /// Only matters for a cold restart that resumes without a snapshot:
    /// set it to the leader's [`corrfuse_serve::RouterConfig::threshold`]
    /// when that is not the default 0.5.
    pub threshold: f64,
    /// How long a bounded-staleness read (`min_epoch`) waits for the
    /// shard to catch up before answering with the retryable
    /// [`corrfuse_serve::ServeError::Stale`].
    pub catchup_timeout: Duration,
    /// Backoff before re-dialing a failed leader link; doubles per
    /// consecutive failure, capped at 20× the base, and resets on the
    /// first applied batch.
    pub reconnect_backoff: Duration,
    /// Follower-side durability: when set, each shard journals its
    /// applied state to `<dir>/shard-<i>.journal`, and a restarted
    /// follower recovers from those files and resubscribes from its
    /// applied epoch instead of re-bootstrapping a full snapshot.
    pub journal_dir: Option<PathBuf>,
    /// Durability policy for the follower-side journals.
    pub fsync: FsyncPolicy,
    /// Metrics registry: when set, the follower records the
    /// `replica_apply_ns` batch-apply histogram and the
    /// `replica_batches_applied` / `replica_resubscribes` /
    /// `replica_snapshots` counters (catalog in
    /// `docs/OBSERVABILITY.md`), and a [`crate::FollowerServer`] serving
    /// this follower includes the registry snapshot in `METRICS`.
    pub metrics: Option<Arc<Registry>>,
}

impl FollowerConfig {
    /// Defaults around `fuser`: threshold 0.5, 2 s catch-up timeout,
    /// 10 ms reconnect backoff, no journal, no metrics.
    pub fn new(fuser: FuserConfig) -> FollowerConfig {
        FollowerConfig {
            fuser,
            threshold: 0.5,
            catchup_timeout: Duration::from_secs(2),
            reconnect_backoff: Duration::from_millis(10),
            journal_dir: None,
            fsync: FsyncPolicy::Never,
            metrics: None,
        }
    }

    /// Set the fallback decision threshold (see the field docs).
    pub fn with_threshold(mut self, threshold: f64) -> FollowerConfig {
        self.threshold = threshold;
        self
    }

    /// Set the bounded-staleness catch-up timeout.
    pub fn with_catchup_timeout(mut self, timeout: Duration) -> FollowerConfig {
        self.catchup_timeout = timeout;
        self
    }

    /// Set the reconnect backoff base.
    pub fn with_reconnect_backoff(mut self, backoff: Duration) -> FollowerConfig {
        self.reconnect_backoff = backoff;
        self
    }

    /// Journal applied state under `dir` with the given durability
    /// policy (see [`FollowerConfig::journal_dir`]).
    pub fn with_journal_dir(
        mut self,
        dir: impl Into<PathBuf>,
        fsync: FsyncPolicy,
    ) -> FollowerConfig {
        self.journal_dir = Some(dir.into());
        self.fsync = fsync;
        self
    }

    /// Record replication metrics into `registry`.
    pub fn with_metrics(mut self, registry: Arc<Registry>) -> FollowerConfig {
        self.metrics = Some(registry);
        self
    }
}
