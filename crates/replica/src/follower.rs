//! The [`Follower`]: one replication link per leader shard, applying
//! the leader's committed-batch stream through the incremental path and
//! serving bounded-staleness reads from the resulting warm state.
//!
//! ```text
//!  leader Server ── SUBSCRIBE_OK ──▶ link thread (one per shard)
//!        │                              │ BATCH{epoch, codec text}
//!        │◀─── EPOCH_ACK{shard,epoch} ──┤
//!        │                              ▼
//!        │                    StreamSession::ingest (delta path)
//!        │                              │ epoch advances, Condvar wakes
//!        │                              ▼
//!        └─ reads stay on the leader   scores_at / decisions_at / stats_at
//! ```
//!
//! Each link dials the leader, handshakes `HELLO`, and subscribes with
//! `from_epoch` = the epoch this follower has fully applied — or the
//! [`BOOTSTRAP_EPOCH`] sentinel when it holds no state, which always
//! forces a snapshot start. Batches must arrive in exact epoch sequence
//! (`applied + 1`); any gap or duplicate is a protocol violation that
//! drops the link, and the next dial resubscribes from the applied
//! epoch. A follower that fell behind the leader's backlog is
//! disconnected by the tap and bootstraps again from a fresh snapshot.
//! Every transition is crash-shaped: state is only ever "snapshot at
//! epoch e, plus the batches e+1..=k applied in order", which is exactly
//! the state the trust anchor pins bitwise against a from-scratch
//! `Fuser::fit + score_all` on the leader's dataset.

use std::collections::HashMap;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use corrfuse_core::TripleId;
use corrfuse_net::frame::VERSION;
use corrfuse_net::{Frame, NetError, Request, Response, WireSubscriptionStart};
use corrfuse_obs::{Counter, Histogram, Span};
use corrfuse_serve::{derive_tenant_maps, extend_tenant_maps, ServeError, TenantId, TenantMap};
use corrfuse_stream::StreamSession;

use crate::config::FollowerConfig;
use crate::error::{ReplicaError, Result};

/// The `from_epoch` sentinel a follower with no local state sends in
/// `SUBSCRIBE`: it can never be covered by the leader's backlog, so the
/// leader always answers with a snapshot start. (`from_epoch = 0` would
/// instead claim the follower already holds the leader's epoch-0 seed
/// state, which a brand-new follower does not.)
pub const BOOTSTRAP_EPOCH: u64 = u64::MAX;

/// One shard's replicated state and apply-side counters.
#[derive(Debug, Default)]
struct ShardState {
    /// The replica session: `None` until the first snapshot bootstrap
    /// (or journal recovery) lands. Reads against a session-less shard
    /// wait, then report `STALE` at epoch 0.
    session: Option<StreamSession>,
    /// Tenant views derived from the (namespaced) shard dataset,
    /// extended incrementally as batches register new sources/triples.
    maps: HashMap<TenantId, TenantMap>,
    /// Decision threshold (authoritative from the latest snapshot).
    threshold: f64,
    batches_applied: u64,
    events_applied: u64,
    apply_errors: u64,
    /// Successfully established subscriptions on this shard's link.
    subscriptions: u64,
    /// Snapshot bootstraps performed (0 when every link resumed).
    snapshots: u64,
}

impl ShardState {
    fn epoch(&self) -> u64 {
        self.session.as_ref().map_or(0, StreamSession::epoch)
    }
}

/// One shard's slot: state + catch-up signal + the live link socket
/// (kept so shutdown and the [`Follower::disconnect_all`] test hook can
/// unblock a link parked in a read).
#[derive(Debug)]
struct Slot {
    state: Mutex<ShardState>,
    caught_up: Condvar,
    conn: Mutex<Option<TcpStream>>,
}

/// Replication counters shared by every link thread (present only when
/// the follower runs with a metrics registry).
#[derive(Debug)]
struct LinkMetrics {
    apply_ns: Arc<Histogram>,
    batches: Arc<Counter>,
    resubscribes: Arc<Counter>,
    snapshots: Arc<Counter>,
}

#[derive(Debug)]
struct Shared {
    addr: String,
    config: FollowerConfig,
    slots: Vec<Slot>,
    metrics: Option<LinkMetrics>,
    stop: AtomicBool,
}

/// Per-shard follower statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowerShardStats {
    /// The shard index (matching the leader's).
    pub shard: usize,
    /// The epoch this follower has fully applied on the shard.
    pub applied_epoch: u64,
    /// Tenants visible in the replicated shard dataset.
    pub tenants: usize,
    /// Batches applied through the incremental path.
    pub batches_applied: u64,
    /// Events inside those batches.
    pub events_applied: u64,
    /// Batches that failed to apply (each discards the shard state and
    /// forces a fresh snapshot bootstrap).
    pub apply_errors: u64,
    /// Subscriptions established (1 = the initial link never broke).
    pub subscriptions: u64,
    /// Snapshot bootstraps performed.
    pub snapshots: u64,
}

/// Follower-wide statistics: one entry per shard, in shard order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowerStats {
    /// Per-shard entries.
    pub shards: Vec<FollowerShardStats>,
}

impl FollowerStats {
    /// Each shard's applied epoch, in shard order.
    pub fn applied_epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.applied_epoch).collect()
    }
}

/// A read replica of one leader; see the module docs.
#[derive(Debug)]
pub struct Follower {
    shared: Arc<Shared>,
    links: Mutex<Vec<JoinHandle<()>>>,
}

impl Follower {
    /// Connect to a leader: probe its shard count over a throwaway
    /// `STATS` exchange, recover any follower-side journals from
    /// [`FollowerConfig::journal_dir`], and start one replication link
    /// per shard. Returns immediately; reads gate on catch-up via
    /// `min_epoch` (or poll [`Follower::applied_epochs`]).
    pub fn connect(addr: impl Into<String>, config: FollowerConfig) -> Result<Follower> {
        let addr = addr.into();
        let n_shards = probe_shards(&addr)?;
        if let Some(dir) = &config.journal_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| NetError::Io(format!("create journal dir: {e}")))?;
        }
        let mut slots = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            let mut state = ShardState {
                threshold: config.threshold,
                ..ShardState::default()
            };
            if let Some(dir) = &config.journal_dir {
                let path = journal_path(dir, shard);
                if path.exists() {
                    // Cold restart: rebuild from the local journal and
                    // resubscribe from the recovered epoch instead of
                    // pulling a full snapshot again.
                    let (session, _report) =
                        StreamSession::recover(config.fuser.clone(), &path, config.fsync)?;
                    let session = session.with_threshold(config.threshold);
                    state.maps = derive_tenant_maps(session.dataset());
                    state.session = Some(session);
                }
            }
            slots.push(Slot {
                state: Mutex::new(state),
                caught_up: Condvar::new(),
                conn: Mutex::new(None),
            });
        }
        let metrics = config.metrics.as_ref().map(|r| LinkMetrics {
            apply_ns: r.histogram("replica_apply_ns"),
            batches: r.counter("replica_batches_applied"),
            resubscribes: r.counter("replica_resubscribes"),
            snapshots: r.counter("replica_snapshots"),
        });
        let shared = Arc::new(Shared {
            addr,
            config,
            slots,
            metrics,
            stop: AtomicBool::new(false),
        });
        let links = (0..n_shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("corrfuse-replica-{shard}"))
                    .spawn(move || run_link_loop(&shared, shard))
                    .map_err(|e| ReplicaError::Net(NetError::Io(e.to_string())))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Follower {
            shared,
            links: Mutex::new(links),
        })
    }

    /// The leader's address.
    pub fn addr(&self) -> &str {
        &self.shared.addr
    }

    /// Number of shards replicated (the leader's shard count).
    pub fn n_shards(&self) -> usize {
        self.shared.slots.len()
    }

    /// The shard serving `tenant` (the same routing as the leader's
    /// [`corrfuse_serve::ShardRouter::shard_of`]).
    pub fn shard_of(&self, tenant: TenantId) -> usize {
        tenant.0 as usize % self.n_shards()
    }

    /// Each shard's fully-applied epoch, in shard order.
    pub fn applied_epochs(&self) -> Vec<u64> {
        self.shared
            .slots
            .iter()
            .map(|s| s.state.lock().expect("shard state lock").epoch())
            .collect()
    }

    /// Per-shard replication statistics.
    pub fn stats(&self) -> FollowerStats {
        let shards = self
            .shared
            .slots
            .iter()
            .enumerate()
            .map(|(shard, slot)| {
                let st = slot.state.lock().expect("shard state lock");
                FollowerShardStats {
                    shard,
                    applied_epoch: st.epoch(),
                    tenants: st.maps.len(),
                    batches_applied: st.batches_applied,
                    events_applied: st.events_applied,
                    apply_errors: st.apply_errors,
                    subscriptions: st.subscriptions,
                    snapshots: st.snapshots,
                }
            })
            .collect();
        FollowerStats { shards }
    }

    /// Posterior scores of `tenant` in tenant-local `TripleId` order,
    /// from whatever epoch the replica has applied (no staleness bound).
    pub fn scores(&self, tenant: TenantId) -> Result<Vec<f64>> {
        self.scores_at(tenant, 0)
    }

    /// Bounded-staleness scores: waits up to
    /// [`FollowerConfig::catchup_timeout`] for the tenant's shard to
    /// reach `min_epoch`, then answers bitwise identically to the leader
    /// at that epoch; a shard still behind reports the retryable
    /// [`ServeError::Stale`].
    pub fn scores_at(&self, tenant: TenantId, min_epoch: u64) -> Result<Vec<f64>> {
        let shard = self.shard_of(tenant);
        let st = self.state_at(shard, min_epoch)?;
        let map = st
            .maps
            .get(&tenant)
            .ok_or(ServeError::UnknownTenant(tenant))?;
        let scores = st.session.as_ref().expect("caught-up session").scores();
        Ok(tenant_rows(map, scores, |x| x))
    }

    /// Accept/reject decisions of `tenant` at the replicated threshold.
    pub fn decisions(&self, tenant: TenantId) -> Result<Vec<bool>> {
        self.decisions_at(tenant, 0)
    }

    /// Bounded-staleness decisions; see [`Follower::scores_at`].
    pub fn decisions_at(&self, tenant: TenantId, min_epoch: u64) -> Result<Vec<bool>> {
        let shard = self.shard_of(tenant);
        let st = self.state_at(shard, min_epoch)?;
        let map = st
            .maps
            .get(&tenant)
            .ok_or(ServeError::UnknownTenant(tenant))?;
        let threshold = st.threshold;
        let scores = st.session.as_ref().expect("caught-up session").scores();
        Ok(tenant_rows(map, scores, |x| x > threshold))
    }

    /// Follower statistics once **every** shard has reached `min_epoch`
    /// (waiting like [`Follower::scores_at`]); the first shard still
    /// behind reports [`ServeError::Stale`].
    pub fn stats_at(&self, min_epoch: u64) -> Result<FollowerStats> {
        for shard in 0..self.n_shards() {
            drop(self.state_at(shard, min_epoch)?);
        }
        Ok(self.stats())
    }

    /// The metrics registry this follower records into, if any.
    pub fn metrics_registry(&self) -> Option<&Arc<corrfuse_obs::Registry>> {
        self.shared.config.metrics.as_ref()
    }

    /// Test hook: sever every live leader link (as a flaky network
    /// would). Links notice, re-dial, and resubscribe from their applied
    /// epochs; replicated state is untouched.
    pub fn disconnect_all(&self) {
        for slot in &self.shared.slots {
            if let Some(conn) = slot.conn.lock().expect("conn lock").take() {
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Stop every link, seal the follower-side journals and join the
    /// threads. Replicated state remains readable through this handle
    /// until drop.
    pub fn shutdown(&self) {
        self.stop_and_join();
    }

    /// Wait (with the catch-up timeout) for `shard` to hold a session at
    /// `min_epoch` or later, and return the locked state.
    fn state_at(&self, shard: usize, min_epoch: u64) -> Result<MutexGuard<'_, ShardState>> {
        let slot = &self.shared.slots[shard];
        let deadline = Instant::now() + self.shared.config.catchup_timeout;
        let mut st = slot.state.lock().expect("shard state lock");
        loop {
            if st.session.is_some() && st.epoch() >= min_epoch {
                return Ok(st);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServeError::Stale {
                    shard,
                    epoch: st.epoch(),
                    min_epoch,
                }
                .into());
            }
            let (guard, _) = slot
                .caught_up
                .wait_timeout(st, deadline - now)
                .expect("shard state lock");
            st = guard;
        }
    }

    fn stop_and_join(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.disconnect_all();
        for link in self.links.lock().expect("links lock").drain(..) {
            let _ = link.join();
        }
        for slot in &self.shared.slots {
            let mut st = slot.state.lock().expect("shard state lock");
            if let Some(session) = st.session.as_mut() {
                let _ = session.seal_journal();
            }
        }
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Project shard-space scores onto one tenant's dense local id space.
fn tenant_rows<T>(map: &TenantMap, scores: &[f64], f: impl Fn(f64) -> T) -> Vec<T> {
    (0..map.n_triples())
        .map(|k| {
            let t = map
                .triple(TripleId(k as u32))
                .expect("tenant maps are dense");
            f(scores[t.index()])
        })
        .collect()
}

fn journal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.journal"))
}

/// Dial + `HELLO` handshake (the follower side speaks the raw frame
/// primitives: unlike [`corrfuse_net::Client`] it must read unsolicited
/// `BATCH` frames, so the pipelined request/response machinery does not
/// fit).
fn dial(addr: &str) -> Result<TcpStream> {
    use std::io::Write as _;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    Request::Hello {
        min_version: VERSION,
        max_version: VERSION,
        credential: None,
    }
    .to_frame()
    .write_to(&mut stream)?;
    stream.flush()?;
    match read_response(&mut stream)? {
        Response::HelloOk { version } if version == VERSION => Ok(stream),
        Response::Error { code, message } => Err(NetError::Remote { code, message }.into()),
        other => Err(ReplicaError::Protocol(format!(
            "expected HELLO_OK, got {other:?}"
        ))),
    }
}

fn read_response(stream: &mut TcpStream) -> Result<Response> {
    match Frame::read_from(stream)? {
        Some(frame) => Ok(Response::from_frame(&frame).map_err(NetError::Frame)?),
        None => Err(NetError::Io("connection closed by leader".to_string()).into()),
    }
}

/// One `STATS` exchange on a throwaway connection, to learn the
/// leader's shard count.
fn probe_shards(addr: &str) -> Result<usize> {
    use std::io::Write as _;
    let mut stream = dial(addr)?;
    Request::Stats { min_epoch: None }
        .to_frame()
        .write_to(&mut stream)?;
    stream.flush()?;
    match read_response(&mut stream)? {
        Response::StatsOk { stats } if !stats.shards.is_empty() => Ok(stats.shards.len()),
        Response::StatsOk { .. } => Err(ReplicaError::Protocol(
            "leader reports zero shards".to_string(),
        )),
        Response::Error { code, message } => Err(NetError::Remote { code, message }.into()),
        other => Err(ReplicaError::Protocol(format!(
            "expected STATS_OK, got {other:?}"
        ))),
    }
}

/// The link thread: dial–subscribe–apply until stopped, with doubling
/// (capped) backoff between failed links and a reset on progress.
fn run_link_loop(shared: &Shared, shard: usize) {
    let base = shared
        .config
        .reconnect_backoff
        .max(Duration::from_millis(1));
    let cap = base.saturating_mul(20);
    let mut backoff = base;
    while !shared.stop.load(Ordering::SeqCst) {
        let applied = run_link(shared, shard).unwrap_or(0);
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if applied > 0 {
            backoff = base;
        }
        // Sliced sleep so a stop lands promptly even mid-backoff.
        let until = Instant::now() + backoff;
        while Instant::now() < until && !shared.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5).min(backoff));
        }
        backoff = (backoff * 2).min(cap);
    }
}

/// One link: subscribe from the applied epoch (or bootstrap), then
/// apply `BATCH` frames and acknowledge each applied epoch, until the
/// connection ends. Returns the number of batches applied on this link.
fn run_link(shared: &Shared, shard: usize) -> Result<u64> {
    use std::io::Write as _;
    let slot = &shared.slots[shard];
    let mut stream = dial(&shared.addr)?;
    let from_epoch = {
        let st = slot.state.lock().expect("shard state lock");
        match &st.session {
            Some(session) => session.epoch(),
            None => BOOTSTRAP_EPOCH,
        }
    };
    Request::Subscribe {
        shard: shard as u32,
        from_epoch,
    }
    .to_frame()
    .write_to(&mut stream)?;
    stream.flush()?;
    match read_response(&mut stream)? {
        Response::SubscribeOk {
            start: WireSubscriptionStart::Resume,
        } => {
            if from_epoch == BOOTSTRAP_EPOCH {
                return Err(ReplicaError::Protocol(
                    "leader resumed a subscription the follower has no state for".to_string(),
                ));
            }
        }
        Response::SubscribeOk {
            start:
                WireSubscriptionStart::Snapshot {
                    epoch,
                    threshold,
                    dataset,
                },
        } => bootstrap(shared, shard, epoch, threshold, &dataset)?,
        Response::Error { code, message } => return Err(NetError::Remote { code, message }.into()),
        other => {
            return Err(ReplicaError::Protocol(format!(
                "expected SUBSCRIBE_OK, got {other:?}"
            )))
        }
    }
    {
        let mut st = slot.state.lock().expect("shard state lock");
        st.subscriptions += 1;
        if st.subscriptions > 1 {
            if let Some(m) = &shared.metrics {
                m.resubscribes.inc();
            }
        }
    }
    *slot.conn.lock().expect("conn lock") = Some(stream.try_clone().map_err(NetError::from)?);
    if shared.stop.load(Ordering::SeqCst) {
        return Ok(0);
    }
    let mut applied = 0u64;
    let result = loop {
        match Frame::read_from(&mut stream) {
            Ok(Some(frame)) => match Response::from_frame(&frame).map_err(NetError::Frame) {
                Ok(Response::Batch { epoch, text }) => {
                    if let Err(e) = apply_batch(shared, shard, epoch, &text) {
                        break Err(e);
                    }
                    applied += 1;
                    let acked = Request::EpochAck {
                        shard: shard as u32,
                        epoch,
                    }
                    .to_frame()
                    .write_to(&mut stream)
                    .and_then(|()| Ok(stream.flush()?));
                    if let Err(e) = acked {
                        break Err(e.into());
                    }
                }
                Ok(other) => {
                    break Err(ReplicaError::Protocol(format!(
                        "expected BATCH, got {other:?}"
                    )))
                }
                Err(e) => break Err(e.into()),
            },
            // Clean close: leader shutdown, or the tap dropped this
            // subscriber for falling behind. Resubscribe.
            Ok(None) => break Ok(applied),
            Err(e) => break Err(e.into()),
        }
    };
    slot.conn.lock().expect("conn lock").take();
    result.map(|_| applied)
}

/// Replace `shard`'s state with a leader snapshot at `epoch`.
fn bootstrap(
    shared: &Shared,
    shard: usize,
    epoch: u64,
    threshold: f64,
    dataset_text: &str,
) -> Result<()> {
    let dataset = corrfuse_core::io::from_str(dataset_text)
        .map_err(|e| ReplicaError::Protocol(format!("undecodable snapshot dataset: {e}")))?;
    let mut session = StreamSession::new(shared.config.fuser.clone(), dataset)?
        .with_threshold(threshold)
        .with_epoch(epoch);
    if let Some(dir) = &shared.config.journal_dir {
        session.journal_to_with(journal_path(dir, shard), shared.config.fsync)?;
    }
    let maps = derive_tenant_maps(session.dataset());
    let slot = &shared.slots[shard];
    let mut st = slot.state.lock().expect("shard state lock");
    st.session = Some(session);
    st.maps = maps;
    st.threshold = threshold;
    st.snapshots += 1;
    if let Some(m) = &shared.metrics {
        m.snapshots.inc();
    }
    slot.caught_up.notify_all();
    Ok(())
}

/// Apply one `BATCH` frame: decode the codec text, check the epoch is
/// exactly the next in sequence, run the incremental ingest, extend the
/// tenant maps with whatever the batch registered, and wake readers.
fn apply_batch(shared: &Shared, shard: usize, epoch: u64, text: &str) -> Result<()> {
    let parsed = corrfuse_stream::codec::parse_batches(text)
        .map_err(|e| ReplicaError::Protocol(format!("undecodable BATCH payload: {e}")))?;
    if parsed.open_tail || parsed.batches.len() != 1 {
        return Err(ReplicaError::Protocol(format!(
            "BATCH payload must hold exactly one closed batch, got {} ({})",
            parsed.batches.len(),
            if parsed.open_tail { "open" } else { "closed" },
        )));
    }
    let events = &parsed.batches[0];
    let slot = &shared.slots[shard];
    let mut st = slot.state.lock().expect("shard state lock");
    let Some(session) = st.session.as_ref() else {
        return Err(ReplicaError::Protocol(
            "BATCH received before any snapshot bootstrap".to_string(),
        ));
    };
    let expected = session.epoch() + 1;
    if epoch != expected {
        return Err(ReplicaError::Protocol(format!(
            "BATCH epoch {epoch} out of sequence (expected {expected})"
        )));
    }
    let before_sources = session.dataset().n_sources();
    let before_triples = session.dataset().n_triples();
    let span = Span::start(shared.metrics.is_some());
    let outcome = st.session.as_mut().expect("session present").ingest(events);
    if let Err(e) = outcome {
        // A batch the leader committed failed to apply here: the
        // replica has diverged (or its journal died). Discard the shard
        // and let the next link bootstrap a fresh snapshot.
        st.session = None;
        st.maps.clear();
        st.apply_errors += 1;
        return Err(e.into());
    }
    if let Some(m) = &shared.metrics {
        m.apply_ns.record(span.elapsed_ns());
        m.batches.inc();
    }
    let ShardState { session, maps, .. } = &mut *st;
    let dataset = session.as_ref().expect("session present").dataset();
    extend_tenant_maps(maps, dataset, before_sources, before_triples);
    st.batches_applied += 1;
    st.events_applied += events.len() as u64;
    slot.caught_up.notify_all();
    Ok(())
}
