//! # corrfuse-replica
//!
//! Read-replica followers for the corrfuse serving stack: each
//! [`Follower`] subscribes to every shard of a leader
//! [`corrfuse_net::Server`] over the `corrfuse-net v1` replication
//! frames (`SUBSCRIBE`/`BATCH`/`EPOCH_ACK` — spec in
//! `docs/PROTOCOL.md` §7), applies the leader's committed batches
//! through the incremental fusion path, and serves
//! `SCORES`/`DECISIONS`/`STATS` reads — in process, or over TCP through
//! the read-only [`FollowerServer`] — with a **bounded-staleness**
//! guarantee: a read carrying `min_epoch` waits for the shard to catch
//! up and otherwise reports the retryable `STALE` error.
//!
//! ```text
//!  producers ──▶ leader Server ──▶ ShardRouter ──▶ shard sessions
//!                    │ SUBSCRIBE/BATCH (one link per shard)
//!        ┌───────────┴───────────┐
//!        ▼                       ▼
//!   Follower (warm state)   Follower (warm state)
//!        ▲ SCORES/DECISIONS/STATS (min_epoch-gated)
//!     read clients
//! ```
//!
//! The workspace trust anchor extends across replication: a follower's
//! scores at epoch `e` are **bitwise identical** to a from-scratch
//! `Fuser::fit + score_all` on the leader shard's dataset at the same
//! epoch — across snapshot bootstrap, mid-stream reconnect, journal
//! rotation on the leader, and follower cold restart (pinned by
//! `tests/replica_equivalence.rs` at the workspace root).
//!
//! * [`follower`] — the [`Follower`]: per-shard replication links,
//!   epoch-sequenced apply, catch-up gating, optional follower-side
//!   journals for cold restart.
//! * [`server`] — the read-only [`FollowerServer`] speaking the same
//!   wire protocol (writes answer `FORBIDDEN`).
//! * [`config`] — [`FollowerConfig`].
//! * [`error`] — [`ReplicaError`].
//!
//! See `examples/replica_follower.rs` for a leader + two followers over
//! loopback.

#![warn(rust_2018_idioms)]
#![deny(missing_docs)]

pub mod config;
pub mod error;
pub mod follower;
pub mod server;

pub use config::FollowerConfig;
pub use error::{ReplicaError, Result};
pub use follower::{Follower, FollowerShardStats, FollowerStats, BOOTSTRAP_EPOCH};
pub use server::{spawn, FollowerServer, FollowerServerConfig, FollowerServerHandle};
