#!/usr/bin/env bash
# Fail on broken relative markdown links across README.md and docs/*.md.
#
# Checks every `](target)` whose target is not an absolute URL or a
# pure in-page anchor; the target (with any `#anchor` stripped) must
# exist relative to the file that links it. Run from anywhere:
#   bash scripts/check_doc_links.sh
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
for f in README.md docs/*.md; do
  while IFS= read -r link; do
    [ -z "$link" ] && continue
    case "$link" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    target="${link%%#*}"
    [ -z "$target" ] && continue
    if [ ! -e "$(dirname "$f")/$target" ]; then
      echo "broken link in $f: ($link)" >&2
      status=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//')
done

if [ "$status" -eq 0 ]; then
  echo "doc links OK"
fi
exit "$status"
