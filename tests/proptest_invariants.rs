//! Property-based tests of the core fusion invariants.

use corrfuse::core::bits::BitSet;
use corrfuse::core::exact::ExactSolver;
use corrfuse::core::elastic::ElasticSolver;
use corrfuse::core::aggressive::AggressiveSolver;
use corrfuse::core::independent::PrecRecModel;
use corrfuse::core::joint::{IndependentJoint, JointQuality, SourceSet};
use corrfuse::core::prob::{posterior_from_mu, sigmoid};
use corrfuse::core::quality::{derive_fpr, max_valid_alpha};
use corrfuse::core::subset::{binomial, submasks, submasks_of_size};

use proptest::prelude::*;

/// A mixture-of-products joint model: always a valid exchangeable-ish
/// correlation structure (each component is an independent world).
#[derive(Debug, Clone)]
struct MixtureJoint {
    weight: f64,
    hi_r: Vec<f64>,
    lo_r: Vec<f64>,
    hi_q: Vec<f64>,
    lo_q: Vec<f64>,
}

impl JointQuality for MixtureJoint {
    fn n_members(&self) -> usize {
        self.hi_r.len()
    }
    fn joint_recall(&self, set: SourceSet) -> f64 {
        let a: f64 = set.iter().map(|k| self.hi_r[k]).product();
        let b: f64 = set.iter().map(|k| self.lo_r[k]).product();
        self.weight * a + (1.0 - self.weight) * b
    }
    fn joint_fpr(&self, set: SourceSet) -> f64 {
        let a: f64 = set.iter().map(|k| self.hi_q[k]).product();
        let b: f64 = set.iter().map(|k| self.lo_q[k]).product();
        self.weight * a + (1.0 - self.weight) * b
    }
}

fn prob_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.02f64..0.98, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn corollary_4_3_exact_equals_theorem_3_1(
        recalls in prob_vec(5),
        fprs in prob_vec(5),
        mask in 0u64..32,
    ) {
        let joint = IndependentJoint::new(recalls.clone(), fprs.clone()).unwrap();
        let solver = ExactSolver::new();
        let active = SourceSet::full(5);
        let mu_exact = solver.mu(&joint, SourceSet(mask), active).unwrap();
        let mut mu_indep = 1.0;
        for k in 0..5 {
            mu_indep *= if mask >> k & 1 == 1 {
                recalls[k] / fprs[k]
            } else {
                (1.0 - recalls[k]) / (1.0 - fprs[k])
            };
        }
        prop_assert!((mu_exact - mu_indep).abs() <= 1e-6 * mu_indep.abs().max(1.0),
            "exact {} vs product {}", mu_exact, mu_indep);
    }

    #[test]
    fn corollary_4_6_aggressive_equals_theorem_3_1(
        recalls in prob_vec(4),
        fprs in prob_vec(4),
        mask in 0u64..16,
    ) {
        let joint = IndependentJoint::new(recalls.clone(), fprs.clone()).unwrap();
        let solver = AggressiveSolver::new(&joint, SourceSet::full(4));
        let mu = solver.mu(SourceSet(mask), SourceSet::full(4));
        let mut expected = 1.0;
        for k in 0..4 {
            expected *= if mask >> k & 1 == 1 {
                recalls[k] / fprs[k]
            } else {
                (1.0 - recalls[k]) / (1.0 - fprs[k])
            };
        }
        prop_assert!((mu - expected).abs() <= 1e-6 * expected.abs().max(1.0));
    }

    #[test]
    fn elastic_at_full_level_is_exact_for_correlated_joints(
        weight in 0.05f64..0.95,
        hi_r in prob_vec(5),
        lo_r in prob_vec(5),
        hi_q in prob_vec(5),
        lo_q in prob_vec(5),
        mask in 0u64..32,
    ) {
        let joint = MixtureJoint { weight, hi_r, lo_r, hi_q, lo_q };
        let active = SourceSet::full(5);
        let providers = SourceSet(mask);
        let lambda = active.minus(providers).count();
        let elastic = ElasticSolver::new(&joint, active, lambda);
        let mu_elastic = elastic.mu(&joint, providers, active);
        let mu_exact = ExactSolver::new().mu(&joint, providers, active).unwrap();
        // Both can be infinite together.
        if mu_exact.is_finite() {
            prop_assert!((mu_elastic - mu_exact).abs() <= 1e-6 * mu_exact.abs().max(1e-6),
                "elastic {} vs exact {}", mu_elastic, mu_exact);
        } else {
            prop_assert!(!mu_elastic.is_finite());
        }
    }

    #[test]
    fn exact_likelihoods_are_probabilities_for_mixtures(
        weight in 0.05f64..0.95,
        hi_r in prob_vec(4),
        lo_r in prob_vec(4),
        hi_q in prob_vec(4),
        lo_q in prob_vec(4),
        mask in 0u64..16,
    ) {
        let joint = MixtureJoint { weight, hi_r, lo_r, hi_q, lo_q };
        let lk = ExactSolver::new()
            .likelihoods(&joint, SourceSet(mask), SourceSet::full(4))
            .unwrap();
        prop_assert!(lk.r >= -1e-9 && lk.r <= 1.0 + 1e-9, "R = {}", lk.r);
        prop_assert!(lk.q >= -1e-9 && lk.q <= 1.0 + 1e-9, "Q = {}", lk.q);
    }

    #[test]
    fn posterior_is_monotone_in_mu(
        mu1 in 0.0f64..100.0,
        mu2 in 0.0f64..100.0,
        alpha in 0.05f64..0.95,
    ) {
        let (lo, hi) = if mu1 <= mu2 { (mu1, mu2) } else { (mu2, mu1) };
        prop_assert!(posterior_from_mu(lo, alpha) <= posterior_from_mu(hi, alpha) + 1e-12);
    }

    #[test]
    fn posterior_is_monotone_in_alpha(
        mu in 0.01f64..100.0,
        a1 in 0.05f64..0.95,
        a2 in 0.05f64..0.95,
    ) {
        let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
        prop_assert!(posterior_from_mu(mu, lo) <= posterior_from_mu(mu, hi) + 1e-12);
    }

    #[test]
    fn derive_fpr_respects_validity_boundary(
        p in 0.05f64..0.99,
        r in 0.01f64..0.99,
        alpha in 0.01f64..0.99,
    ) {
        let result = derive_fpr(p, r, alpha);
        let boundary = max_valid_alpha(p, r);
        if alpha <= boundary - 1e-9 {
            let q = result.unwrap();
            prop_assert!((0.0..=1.0).contains(&q));
            // Theorem 3.5 second part: good source iff p > alpha.
            if p > alpha {
                prop_assert!(q < r + 1e-12, "p {} > alpha {} should give q {} < r {}", p, alpha, q, r);
            }
        } else if alpha > boundary + 1e-9 {
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn precrec_proposition_3_2(
        recalls in prob_vec(3),
        fprs in prob_vec(3),
        extra_r in 0.05f64..0.95,
        extra_q in 0.05f64..0.95,
        mask in 0u64..8,
    ) {
        // Adding a good source providing t raises the score; a good source
        // not providing t lowers it (and vice versa for bad sources).
        prop_assume!((extra_r - extra_q).abs() > 0.05);
        let base = PrecRecModel::from_rates(&recalls, &fprs, 0.5).unwrap();
        let scope3 = BitSet::from_indices(3, 0..3);
        let providers3 = BitSet::from_indices(3, (0..3).filter(|k| mask >> k & 1 == 1));
        let p_base = base.score(&providers3, &scope3);

        let mut r4 = recalls.clone();
        r4.push(extra_r);
        let mut q4 = fprs.clone();
        q4.push(extra_q);
        let ext = PrecRecModel::from_rates(&r4, &q4, 0.5).unwrap();
        let scope4 = BitSet::from_indices(4, 0..4);
        let with = {
            let mut p = BitSet::from_indices(4, (0..3).filter(|k| mask >> k & 1 == 1));
            p.set(3, true);
            p
        };
        let without = BitSet::from_indices(4, (0..3).filter(|k| mask >> k & 1 == 1));
        let p_with = ext.score(&with, &scope4);
        let p_without = ext.score(&without, &scope4);
        if extra_r > extra_q {
            prop_assert!(p_with >= p_base - 1e-12);
            prop_assert!(p_without <= p_base + 1e-12);
        } else {
            prop_assert!(p_with <= p_base + 1e-12);
            prop_assert!(p_without >= p_base - 1e-12);
        }
    }

    #[test]
    fn subset_enumeration_counts(mask in 0u64..(1 << 12)) {
        let n = mask.count_ones() as usize;
        prop_assert_eq!(submasks(mask).count(), 1usize << n);
        let mut total = 0usize;
        for k in 0..=n {
            let c = submasks_of_size(mask, k).count();
            prop_assert_eq!(c, binomial(n, k));
            total += c;
        }
        prop_assert_eq!(total, 1usize << n);
    }

    #[test]
    fn submasks_are_subsets(mask in 0u64..(1 << 14)) {
        for sub in submasks(mask) {
            prop_assert_eq!(sub & !mask, 0);
        }
    }

    #[test]
    fn bitset_project_roundtrip(indices in proptest::collection::btree_set(0usize..200, 0..20)) {
        let bs = BitSet::from_indices(200, indices.iter().copied());
        // Projecting onto the full identity positions of the first 64 bits
        // reproduces membership.
        let positions: Vec<usize> = (0..64).collect();
        let mask = bs.project(&positions);
        for k in 0..64 {
            prop_assert_eq!(mask >> k & 1 == 1, bs.get(k));
        }
        prop_assert_eq!(bs.count_ones(), indices.len());
    }

    #[test]
    fn sigmoid_bounds_and_symmetry(x in -500f64..500.0) {
        let s = sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((sigmoid(-x) - (1.0 - s)).abs() < 1e-12);
    }
}
