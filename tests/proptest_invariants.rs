//! Property-based tests of the core fusion invariants, driven by the
//! in-tree [`corrfuse::core::testkit`] harness (offline `proptest`
//! stand-in): each property runs over a deterministic stream of random
//! cases seeded from its name.

use corrfuse::core::aggressive::AggressiveSolver;
use corrfuse::core::bits::BitSet;
use corrfuse::core::elastic::ElasticSolver;
use corrfuse::core::exact::ExactSolver;
use corrfuse::core::independent::PrecRecModel;
use corrfuse::core::joint::{IndependentJoint, JointQuality, SourceSet};
use corrfuse::core::prob::{posterior_from_mu, sigmoid};
use corrfuse::core::quality::{derive_fpr, max_valid_alpha};
use corrfuse::core::subset::{binomial, submasks, submasks_of_size};
use corrfuse::core::testkit::{run_cases, Gen};

const CASES: usize = 64;

/// A mixture-of-products joint model: always a valid exchangeable-ish
/// correlation structure (each component is an independent world).
#[derive(Debug, Clone)]
struct MixtureJoint {
    weight: f64,
    hi_r: Vec<f64>,
    lo_r: Vec<f64>,
    hi_q: Vec<f64>,
    lo_q: Vec<f64>,
}

impl MixtureJoint {
    fn sample(g: &mut Gen, n: usize) -> MixtureJoint {
        MixtureJoint {
            weight: g.f64_in(0.05, 0.95),
            hi_r: prob_vec(g, n),
            lo_r: prob_vec(g, n),
            hi_q: prob_vec(g, n),
            lo_q: prob_vec(g, n),
        }
    }
}

impl JointQuality for MixtureJoint {
    fn n_members(&self) -> usize {
        self.hi_r.len()
    }
    fn joint_recall(&self, set: SourceSet) -> f64 {
        let a: f64 = set.iter().map(|k| self.hi_r[k]).product();
        let b: f64 = set.iter().map(|k| self.lo_r[k]).product();
        self.weight * a + (1.0 - self.weight) * b
    }
    fn joint_fpr(&self, set: SourceSet) -> f64 {
        let a: f64 = set.iter().map(|k| self.hi_q[k]).product();
        let b: f64 = set.iter().map(|k| self.lo_q[k]).product();
        self.weight * a + (1.0 - self.weight) * b
    }
}

fn prob_vec(g: &mut Gen, n: usize) -> Vec<f64> {
    g.vec_f64(n, 0.02, 0.98)
}

/// Theorem 3.1 product form over an explicit provider mask.
fn independent_mu(recalls: &[f64], fprs: &[f64], mask: u64) -> f64 {
    let mut mu = 1.0;
    for k in 0..recalls.len() {
        mu *= if mask >> k & 1 == 1 {
            recalls[k] / fprs[k]
        } else {
            (1.0 - recalls[k]) / (1.0 - fprs[k])
        };
    }
    mu
}

#[test]
fn corollary_4_3_exact_equals_theorem_3_1() {
    run_cases("corollary_4_3_exact_equals_theorem_3_1", CASES, |g| {
        let recalls = prob_vec(g, 5);
        let fprs = prob_vec(g, 5);
        let mask = g.u64_below(32);
        let joint = IndependentJoint::new(recalls.clone(), fprs.clone()).unwrap();
        let solver = ExactSolver::new();
        let active = SourceSet::full(5);
        let mu_exact = solver.mu(&joint, SourceSet(mask), active).unwrap();
        let mu_indep = independent_mu(&recalls, &fprs, mask);
        assert!(
            (mu_exact - mu_indep).abs() <= 1e-6 * mu_indep.abs().max(1.0),
            "exact {mu_exact} vs product {mu_indep}"
        );
    });
}

#[test]
fn corollary_4_6_aggressive_equals_theorem_3_1() {
    run_cases("corollary_4_6_aggressive_equals_theorem_3_1", CASES, |g| {
        let recalls = prob_vec(g, 4);
        let fprs = prob_vec(g, 4);
        let mask = g.u64_below(16);
        let joint = IndependentJoint::new(recalls.clone(), fprs.clone()).unwrap();
        let solver = AggressiveSolver::new(&joint, SourceSet::full(4));
        let mu = solver.mu(SourceSet(mask), SourceSet::full(4));
        let expected = independent_mu(&recalls, &fprs, mask);
        assert!(
            (mu - expected).abs() <= 1e-6 * expected.abs().max(1.0),
            "aggressive {mu} vs product {expected}"
        );
    });
}

#[test]
fn elastic_at_full_level_is_exact_for_correlated_joints() {
    run_cases(
        "elastic_at_full_level_is_exact_for_correlated_joints",
        CASES,
        |g| {
            let joint = MixtureJoint::sample(g, 5);
            let mask = g.u64_below(32);
            let active = SourceSet::full(5);
            let providers = SourceSet(mask);
            let lambda = active.minus(providers).count();
            let elastic = ElasticSolver::new(&joint, active, lambda);
            let mu_elastic = elastic.mu(&joint, providers, active);
            let mu_exact = ExactSolver::new().mu(&joint, providers, active).unwrap();
            // Both can be infinite together.
            if mu_exact.is_finite() {
                assert!(
                    (mu_elastic - mu_exact).abs() <= 1e-6 * mu_exact.abs().max(1e-6),
                    "elastic {mu_elastic} vs exact {mu_exact}"
                );
            } else {
                assert!(!mu_elastic.is_finite());
            }
        },
    );
}

#[test]
fn exact_likelihoods_are_probabilities_for_mixtures() {
    run_cases(
        "exact_likelihoods_are_probabilities_for_mixtures",
        CASES,
        |g| {
            let joint = MixtureJoint::sample(g, 4);
            let mask = g.u64_below(16);
            let lk = ExactSolver::new()
                .likelihoods(&joint, SourceSet(mask), SourceSet::full(4))
                .unwrap();
            assert!(lk.r >= -1e-9 && lk.r <= 1.0 + 1e-9, "R = {}", lk.r);
            assert!(lk.q >= -1e-9 && lk.q <= 1.0 + 1e-9, "Q = {}", lk.q);
        },
    );
}

#[test]
fn posterior_is_monotone_in_mu() {
    run_cases("posterior_is_monotone_in_mu", CASES, |g| {
        let mu1 = g.f64_in(0.0, 100.0);
        let mu2 = g.f64_in(0.0, 100.0);
        let alpha = g.f64_in(0.05, 0.95);
        let (lo, hi) = if mu1 <= mu2 { (mu1, mu2) } else { (mu2, mu1) };
        assert!(posterior_from_mu(lo, alpha) <= posterior_from_mu(hi, alpha) + 1e-12);
    });
}

#[test]
fn posterior_is_monotone_in_alpha() {
    run_cases("posterior_is_monotone_in_alpha", CASES, |g| {
        let mu = g.f64_in(0.01, 100.0);
        let a1 = g.f64_in(0.05, 0.95);
        let a2 = g.f64_in(0.05, 0.95);
        let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
        assert!(posterior_from_mu(mu, lo) <= posterior_from_mu(mu, hi) + 1e-12);
    });
}

#[test]
fn derive_fpr_respects_validity_boundary() {
    run_cases("derive_fpr_respects_validity_boundary", CASES, |g| {
        let p = g.f64_in(0.05, 0.99);
        let r = g.f64_in(0.01, 0.99);
        let alpha = g.f64_in(0.01, 0.99);
        let result = derive_fpr(p, r, alpha);
        let boundary = max_valid_alpha(p, r);
        if alpha <= boundary - 1e-9 {
            let q = result.unwrap();
            assert!((0.0..=1.0).contains(&q));
            // Theorem 3.5 second part: good source iff p > alpha.
            if p > alpha {
                assert!(
                    q < r + 1e-12,
                    "p {p} > alpha {alpha} should give q {q} < r {r}"
                );
            }
        } else if alpha > boundary + 1e-9 {
            assert!(result.is_err());
        }
    });
}

#[test]
fn precrec_proposition_3_2() {
    run_cases("precrec_proposition_3_2", CASES, |g| {
        // Adding a good source providing t raises the score; a good source
        // not providing t lowers it (and vice versa for bad sources).
        let recalls = prob_vec(g, 3);
        let fprs = prob_vec(g, 3);
        let extra_r = g.f64_in(0.05, 0.95);
        let extra_q = g.f64_in(0.05, 0.95);
        let mask = g.u64_below(8);
        if (extra_r - extra_q).abs() <= 0.05 {
            return; // discard borderline sources (proptest's prop_assume!)
        }
        let base = PrecRecModel::from_rates(&recalls, &fprs, 0.5).unwrap();
        let scope3 = BitSet::from_indices(3, 0..3);
        let providers3 = BitSet::from_indices(3, (0..3).filter(|k| mask >> k & 1 == 1));
        let p_base = base.score(&providers3, &scope3);

        let mut r4 = recalls.clone();
        r4.push(extra_r);
        let mut q4 = fprs.clone();
        q4.push(extra_q);
        let ext = PrecRecModel::from_rates(&r4, &q4, 0.5).unwrap();
        let scope4 = BitSet::from_indices(4, 0..4);
        let with = {
            let mut p = BitSet::from_indices(4, (0..3).filter(|k| mask >> k & 1 == 1));
            p.set(3, true);
            p
        };
        let without = BitSet::from_indices(4, (0..3).filter(|k| mask >> k & 1 == 1));
        let p_with = ext.score(&with, &scope4);
        let p_without = ext.score(&without, &scope4);
        if extra_r > extra_q {
            assert!(p_with >= p_base - 1e-12);
            assert!(p_without <= p_base + 1e-12);
        } else {
            assert!(p_with <= p_base + 1e-12);
            assert!(p_without >= p_base - 1e-12);
        }
    });
}

#[test]
fn subset_enumeration_counts() {
    run_cases("subset_enumeration_counts", CASES, |g| {
        let mask = g.u64_below(1 << 12);
        let n = mask.count_ones() as usize;
        assert_eq!(submasks(mask).count(), 1usize << n);
        let mut total = 0usize;
        for k in 0..=n {
            let c = submasks_of_size(mask, k).count();
            assert_eq!(c, binomial(n, k));
            total += c;
        }
        assert_eq!(total, 1usize << n);
    });
}

#[test]
fn submasks_are_subsets() {
    run_cases("submasks_are_subsets", CASES, |g| {
        let mask = g.u64_below(1 << 14);
        for sub in submasks(mask) {
            assert_eq!(sub & !mask, 0);
        }
    });
}

#[test]
fn bitset_project_roundtrip() {
    run_cases("bitset_project_roundtrip", CASES, |g| {
        let n_indices = g.usize_in(0, 20);
        let indices: std::collections::BTreeSet<usize> =
            (0..n_indices).map(|_| g.usize_in(0, 200)).collect();
        let bs = BitSet::from_indices(200, indices.iter().copied());
        // Projecting onto the full identity positions of the first 64 bits
        // reproduces membership.
        let positions: Vec<usize> = (0..64).collect();
        let mask = bs.project(&positions);
        for k in 0..64 {
            assert_eq!(mask >> k & 1 == 1, bs.get(k));
        }
        assert_eq!(bs.count_ones(), indices.len());
    });
}

#[test]
fn sigmoid_bounds_and_symmetry() {
    run_cases("sigmoid_bounds_and_symmetry", CASES, |g| {
        let x = g.f64_in(-500.0, 500.0);
        let s = sigmoid(x);
        assert!((0.0..=1.0).contains(&s));
        assert!((sigmoid(-x) - (1.0 - s)).abs() < 1e-12);
    });
}
