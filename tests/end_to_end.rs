//! Cross-crate integration: replicas through the full harness, checking
//! the orderings the paper's evaluation establishes.

use corrfuse::eval::harness::{evaluate_all, evaluate_method, MethodSpec};
use corrfuse::synth::replicas;

#[test]
fn reverb_ordering_matches_paper_shape() {
    let ds = replicas::reverb(41).unwrap();
    let reports = evaluate_all(&ds, &MethodSpec::paper_lineup(MethodSpec::PrecRecCorr)).unwrap();
    let f1 = |name: &str| {
        reports
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.prf.f1)
            .unwrap()
    };
    let auc = |name: &str| {
        reports
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.ranked.auc_pr)
            .unwrap()
    };
    // PrecRecCorr obtains the best results on all datasets (paper §5.1).
    for name in [
        "Union-25",
        "Union-50",
        "Union-75",
        "3-Estimates",
        "LTM",
        "PrecRec",
    ] {
        assert!(
            f1("PrecRecCorr") > f1(name),
            "PrecRecCorr {} should beat {name} {}",
            f1("PrecRecCorr"),
            f1(name)
        );
    }
    // The AUC improvements are the paper's headline on REVERB.
    assert!(auc("PrecRecCorr") > auc("PrecRec") + 0.05);
    // 3-Estimates obtains very low recall (lowest F1 family).
    assert!(f1("3-Estimates") < f1("PrecRec"));
}

#[test]
fn restaurant_everything_is_high_and_corr_wins() {
    let ds = replicas::restaurant(42).unwrap();
    let reports = evaluate_all(&ds, &MethodSpec::paper_lineup(MethodSpec::PrecRecCorr)).unwrap();
    let corr = reports.iter().find(|r| r.name == "PrecRecCorr").unwrap();
    let best_other = reports
        .iter()
        .filter(|r| r.name != "PrecRecCorr")
        .map(|r| r.prf.f1)
        .fold(0.0, f64::max);
    assert!(
        corr.prf.f1 >= best_other - 0.02,
        "corr {} vs best {best_other}",
        corr.prf.f1
    );
    assert!(
        corr.prf.f1 > 0.9,
        "restaurant should be easy: {}",
        corr.prf.f1
    );
}

#[test]
fn book_runs_with_clustering_and_scopes() {
    let ds = replicas::book(&replicas::BookConfig {
        n_books: 60,
        n_sources: 90,
        ..Default::default()
    })
    .unwrap();
    let corr = evaluate_method(&ds, &MethodSpec::Elastic(2)).unwrap();
    let indep = evaluate_method(&ds, &MethodSpec::PrecRec).unwrap();
    assert!(corr.prf.f1 > 0.7, "elastic on book: {}", corr.prf.f1);
    assert!(indep.prf.f1 > 0.7, "precrec on book: {}", indep.prf.f1);
    // Union with scoped denominators is meaningful on book data.
    let union = evaluate_method(&ds, &MethodSpec::Union(50.0)).unwrap();
    assert!(
        union.prf.recall > 0.3,
        "scoped union recall {}",
        union.prf.recall
    );
}

#[test]
fn elastic_level_sweep_is_finite_everywhere() {
    let ds = replicas::reverb(5).unwrap();
    let sweep = corrfuse::eval::experiments::elastic_levels::run(&ds, "REVERB", 4, true).unwrap();
    for p in &sweep.points {
        assert!(p.f1.is_finite(), "{} produced NaN", p.label);
        assert!((0.0..=1.0).contains(&p.f1));
    }
    // Final level-4 on 6 sources is close to exact (complement <= 5 can
    // still differ by the level-5 term for unprovided-by-anyone patterns,
    // which cannot occur in observed data; so equality holds).
    let exact = sweep.f1_of("exact").unwrap();
    let lvl4 = sweep.f1_of("level-4").unwrap();
    assert!((exact - lvl4).abs() < 0.05, "exact {exact} vs lvl4 {lvl4}");
}

#[test]
fn discovery_finds_planted_reverb_structure() {
    let ds = replicas::reverb(41).unwrap();
    let res = corrfuse::eval::experiments::discovery::run(
        &ds,
        "REVERB",
        8,
        &corrfuse::core::cluster::ClusterConfig::default(),
    )
    .unwrap();
    // The replica plants {0,1} and {2,3,4} on true triples and pairs on
    // false triples: some non-trivial cliques must surface.
    assert!(!res.clique_sizes.is_empty());
    assert!(res.clique_sizes[0] >= 2);
}

#[test]
fn fig7_sweep_corr_wins_both_scenarios() {
    let sweep = corrfuse::eval::experiments::synthetic::fig7(3, 99).unwrap();
    for point in &sweep.points {
        let get = |name: &str| {
            point
                .f1
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(
            get("PrecRecCorr") + 0.03 >= get("PrecRec"),
            "{}: corr {} vs indep {}",
            point.label,
            get("PrecRecCorr"),
            get("PrecRec")
        );
        assert!(
            get("PrecRecCorr") + 0.03 >= get("Union-50"),
            "{}: corr {} vs majority {}",
            point.label,
            get("PrecRecCorr"),
            get("Union-50")
        );
    }
}

#[test]
fn io_roundtrip_preserves_fusion_results() {
    let ds = replicas::restaurant(3).unwrap();
    let text = corrfuse::core::io::to_string(&ds);
    let back = corrfuse::core::io::from_str(&text).unwrap();
    let a = evaluate_method(&ds, &MethodSpec::PrecRecCorr).unwrap();
    let b = evaluate_method(&back, &MethodSpec::PrecRecCorr).unwrap();
    assert!((a.prf.f1 - b.prf.f1).abs() < 1e-12);
    assert!((a.ranked.auc_pr - b.ranked.auc_pr).abs() < 1e-12);
}

#[test]
fn accucopy_comparison_runs_on_book() {
    let ds = replicas::book(&replicas::BookConfig {
        n_books: 50,
        n_sources: 80,
        ..Default::default()
    })
    .unwrap();
    let res = corrfuse::eval::experiments::book_copy::run(&ds, vec![]).unwrap();
    let accu = res.prf("Accu").unwrap();
    let copy = res.prf("AccuCopy").unwrap();
    assert!(accu.f1.is_finite() && copy.f1.is_finite());
    // The paper's shape: copy detection keeps precision high.
    assert!(
        copy.precision > 0.5,
        "accucopy precision {}",
        copy.precision
    );
}

#[test]
fn ltm_probabilities_are_more_extreme_and_worse_calibrated() {
    // §5.1: "the probabilities it [LTM] outputs typically fall in extreme
    // ranges". Quantify with the calibration module on the REVERB replica.
    use corrfuse::eval::calibration::calibration;
    let ds = replicas::reverb(41).unwrap();
    let gold = ds.require_gold().unwrap().clone();
    let ltm = corrfuse::eval::run_method(&ds, &MethodSpec::ltm_default()).unwrap();
    let corr = corrfuse::eval::run_method(&ds, &MethodSpec::PrecRecCorr).unwrap();
    let c_ltm = calibration(&gold, &ltm.scores, 10);
    let c_corr = calibration(&gold, &corr.scores, 10);
    assert!(
        c_ltm.extreme_fraction > c_corr.extreme_fraction,
        "LTM extreme {} vs corr {}",
        c_ltm.extreme_fraction,
        c_corr.extreme_fraction
    );
    assert!(
        c_ltm.brier > c_corr.brier,
        "LTM brier {} vs corr {}",
        c_ltm.brier,
        c_corr.brier
    );
}
