//! The serving subsystem's trust anchor, as a property over random
//! multi-tenant event streams: for any shard count, backpressure policy
//! and fsync policy, with mid-run journal rotations, the routed,
//! micro-batched, compacted ingestion path yields per-shard scores
//! **bitwise identical** to a from-scratch `Fuser::fit + score_all` on
//! each shard's accumulated dataset — and each shard's rotated journal
//! restores to exactly that state.

use std::time::Duration;

use corrfuse::core::fuser::{Fuser, FuserConfig, Method};
use corrfuse::core::testkit::{run_cases, Gen};
use corrfuse::serve::{
    Backpressure, JournalConfig, RouterConfig, ServeError, ShardRouter, TenantId,
};
use corrfuse::stream::{FsyncPolicy, LogRetention, StreamSession};
use corrfuse::synth::{multi_tenant_events, MultiTenantSpec};

fn random_method(g: &mut Gen) -> Method {
    match g.usize_in(0, 3) {
        0 => Method::PrecRec,
        1 => Method::Exact,
        2 => Method::Aggressive,
        _ => Method::Elastic(g.usize_in(0, 2)),
    }
}

fn random_backpressure(g: &mut Gen) -> Backpressure {
    match g.usize_in(0, 2) {
        0 => Backpressure::Block,
        1 => Backpressure::Reject,
        _ => Backpressure::Timeout(Duration::from_millis(g.usize_in(1, 20) as u64)),
    }
}

fn random_fsync(g: &mut Gen) -> FsyncPolicy {
    match g.usize_in(0, 2) {
        0 => FsyncPolicy::Always,
        1 => FsyncPolicy::EveryBatch,
        _ => FsyncPolicy::Never,
    }
}

#[test]
fn routed_shards_equal_batch_fit_on_random_multi_tenant_streams() {
    let dir = std::env::temp_dir().join(format!("corrfuse-router-eq-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    run_cases("router_equivalence", 6, |g| {
        let case_dir = dir.join(format!("case-{}", g.usize_in(0, usize::MAX / 2)));
        std::fs::create_dir_all(&case_dir).unwrap();
        let n_tenants = g.usize_in(2, 5);
        let spec = MultiTenantSpec {
            n_tenants,
            triples_largest: g.usize_in(80, 140),
            skew: g.f64_in(0.0, 1.5),
            n_sources: g.usize_in(3, 5),
            batches_largest: g.usize_in(3, 6),
            label_fraction: g.f64_in(0.0, 0.6),
            seed: g.usize_in(0, usize::MAX / 2) as u64,
        };
        let s = multi_tenant_events(&spec).expect("stream generation succeeds");
        let config = FuserConfig::new(random_method(g));
        // Any shard count up to one-per-tenant; dense ids keep every
        // shard seeded under modulo routing.
        let n_shards = g.usize_in(1, n_tenants);
        // With single-message batches every shard sees one ingest batch
        // per message, so any rotate-every-1..3 trigger fires; merged
        // batching can coalesce a shard's whole backlog, so only
        // rotate-every-1 is guaranteed to fire there.
        let (batch_events, rotate_batches) = if g.bool(0.5) {
            (1, g.usize_in(1, 3) as u64)
        } else {
            (g.usize_in(32, 256), 1)
        };
        let router_cfg = RouterConfig::new(n_shards)
            .with_queue_capacity(g.usize_in(1, 64))
            .with_backpressure(random_backpressure(g))
            .with_batching(batch_events, Duration::from_millis(1))
            .with_journal(
                JournalConfig::new(&case_dir)
                    .with_fsync(random_fsync(g))
                    .with_rotate_max_batches(rotate_batches),
            )
            .with_retention(if g.bool(0.5) {
                LogRetention::KeepAll
            } else {
                LogRetention::LastBatches(g.usize_in(1, 3))
            })
            .with_shard_threads(if g.bool(0.3) { 3 } else { 1 });
        let seeds = s
            .seeds
            .iter()
            .map(|(t, ds)| (TenantId(*t), ds.clone()))
            .collect();
        let router =
            ShardRouter::new(config.clone(), router_cfg, seeds).expect("router constructs");
        for (tenant, events) in &s.messages {
            // Under Reject/Timeout a full queue refuses the message;
            // retry until the worker catches up so the whole stream is
            // applied (what a real producer would do).
            loop {
                match router.ingest(TenantId(*tenant), events.clone()) {
                    Ok(()) => break,
                    Err(ServeError::Backpressure { .. }) => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("unexpected ingest error: {e}"),
                }
            }
        }
        router.flush().expect("flush succeeds");

        let mut snapshots = Vec::new();
        for shard in 0..router.n_shards() {
            let snap = router.shard_snapshot(shard).expect("snapshot");
            let fresh = Fuser::fit(
                &config,
                &snap.dataset,
                snap.dataset.gold().expect("shard seeds carry gold"),
            )
            .expect("fresh fit succeeds");
            let scores = fresh.score_all(&snap.dataset).expect("fresh scoring");
            assert_eq!(snap.scores.len(), scores.len(), "shard {shard}");
            for (i, (a, b)) in snap.scores.iter().zip(&scores).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "shard {shard}, triple {i}: routed {a} vs batch {b}"
                );
            }
            snapshots.push(snap);
        }
        let stats = router.shutdown().expect("graceful shutdown");
        let agg = stats.aggregate();
        assert_eq!(agg.ingest_errors, 0, "{:?}", agg.last_error);
        assert!(
            agg.rotations > 0,
            "acceptance requires at least one mid-run journal rotation"
        );
        // The rotated, sealed journals restore every shard bit-for-bit.
        for snap in snapshots {
            let restored = StreamSession::restore(
                config.clone(),
                snap.journal_path.as_ref().expect("journaling enabled"),
            )
            .expect("journal restores");
            assert_eq!(restored.dataset().n_triples(), snap.dataset.n_triples());
            for (i, (a, b)) in restored.scores().iter().zip(&snap.scores).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "shard {}, triple {i}: restored {a} vs live {b}",
                    snap.shard
                );
            }
        }
        std::fs::remove_dir_all(&case_dir).ok();
    });
    std::fs::remove_dir_all(&dir).ok();
}
