//! Refactor-equivalence tests: the `CorrelationSolver` trait path inside
//! `Fuser` must reproduce the direct solver calls it replaced, and the
//! `ScoringEngine` parallel path must be bitwise identical to serial.
//!
//! Golden values come from the paper's worked examples on the Figure 1 /
//! Example 4.4 fixture, so these tests also pin the refactored pipeline to
//! the pre-refactor numbers.

use corrfuse::core::aggressive::AggressiveSolver;
use corrfuse::core::dataset::Dataset;
use corrfuse::core::elastic::ElasticSolver;
use corrfuse::core::engine::ScoringEngine;
use corrfuse::core::exact::ExactSolver;
use corrfuse::core::fuser::{ClusterStrategy, Fuser, FuserConfig, Method};
use corrfuse::core::independent::PrecRecModel;
use corrfuse::core::joint::{SourceSet, TableJoint};
use corrfuse::core::prob::posterior_from_mu;
use corrfuse::core::solver::{CorrelationSolver, PrecRecSolver};
use corrfuse::core::triple::TripleId;
use corrfuse::synth::motivating::figure1;

const METHODS: [Method; 5] = [
    Method::PrecRec,
    Method::Exact,
    Method::Aggressive,
    Method::Elastic(1),
    Method::Elastic(4),
];

fn fit(ds: &Dataset, method: Method) -> Fuser {
    Fuser::fit(&FuserConfig::new(method), ds, ds.gold().unwrap()).unwrap()
}

/// Example 4.4's given joint parameters over {S1..S5}.
fn example_4_4_joint() -> TableJoint {
    let r = vec![2.0 / 3.0, 0.5, 2.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0];
    let q = vec![0.5, 2.0 / 3.0, 1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0];
    let mut j = TableJoint::new(r, q).unwrap();
    let s1245 = SourceSet::full(5).without(2);
    j.set_recall(s1245, 0.22);
    j.set_fpr(s1245, 0.22);
    j.set_recall(SourceSet::full(5), 0.11);
    j.set_fpr(SourceSet::full(5), 0.037);
    j
}

/// For every `Method`, the trait-dispatched solver must agree with the
/// direct (pre-refactor) solver call on the Example 4.4 fixture.
#[test]
fn trait_path_matches_direct_path_on_example_4_4() {
    let joint = example_4_4_joint();
    let active = SourceSet::full(5);
    // t8's observation pattern: provided by {S1,S2,S4,S5}.
    let t8 = active.without(2);

    for providers_mask in 0..32u64 {
        let providers = SourceSet(providers_mask);

        let exact = ExactSolver::new();
        let direct = exact.mu(&joint, providers, active).unwrap();
        let via_trait: &dyn CorrelationSolver = &exact;
        assert_eq!(
            direct,
            via_trait.mu(&joint, providers, active).unwrap(),
            "exact, providers {providers_mask:b}"
        );

        let aggressive = AggressiveSolver::new(&joint, active);
        let direct = aggressive.mu(providers, active);
        let via_trait: &dyn CorrelationSolver = &aggressive;
        assert_eq!(
            direct,
            via_trait.mu(&joint, providers, active).unwrap(),
            "aggressive, providers {providers_mask:b}"
        );

        for level in 0..=4 {
            let elastic = ElasticSolver::new(&joint, active, level);
            let direct = elastic.mu(&joint, providers, active);
            let via_trait: &dyn CorrelationSolver = &elastic;
            assert_eq!(
                direct,
                via_trait.mu(&joint, providers, active).unwrap(),
                "elastic-{level}, providers {providers_mask:b}"
            );
        }
    }

    // Golden value from Example 4.4: Pr(t8) = 0.11/(0.11+0.183) ≈ 0.37,
    // identical through the trait object.
    let exact = ExactSolver::new();
    let p_exact = posterior_from_mu(exact.mu(&joint, t8, active).unwrap(), 0.5);
    assert!((p_exact - 0.11 / (0.11 + 0.183)).abs() < 1e-12);
    assert!((p_exact - 0.37).abs() < 0.01, "Pr_exact(t8)={p_exact}");
    let via_trait: &dyn CorrelationSolver = &exact;
    let p_trait = posterior_from_mu(via_trait.mu(&joint, t8, active).unwrap(), 0.5);
    assert_eq!(p_exact, p_trait);
}

/// End-to-end: every method's `Fuser` scores on Figure 1 are unchanged by
/// the trait refactor (golden values from §2.3 / Example 3.3 / 4.4).
#[test]
fn fuser_scores_match_pre_refactor_goldens_on_figure1() {
    let ds = figure1();
    let t2 = TripleId(1);
    let t8 = TripleId(7);

    // PrecRec: Example 3.3 — Pr(t2) = 1/11, Pr(t8) = 1.6/2.6.
    let precrec = fit(&ds, Method::PrecRec);
    assert!((precrec.score_triple(&ds, t2).unwrap() - 1.0 / 11.0).abs() < 1e-9);
    assert!((precrec.score_triple(&ds, t8).unwrap() - 1.6 / 2.6).abs() < 1e-9);

    // Exact on the *empirical* Figure 1 joint: R = r_1245 - r_12345 = 1/6,
    // Q = q_1245 - q_12345 = 1/3, so mu = 1/2 and Pr(t8) = 1/3 — below the
    // 0.5 threshold, matching the §2.3 claim that PrecRecCorr rejects t8.
    let exact = fit(&ds, Method::Exact);
    let p_t8 = exact.score_triple(&ds, t8).unwrap();
    assert!((p_t8 - 1.0 / 3.0).abs() < 1e-9, "Pr(t8)={p_t8}");

    // Elastic at full level equals exact on every triple.
    let lvl4 = fit(&ds, Method::Elastic(4));
    for t in ds.triples() {
        let a = exact.score_triple(&ds, t).unwrap();
        let b = lvl4.score_triple(&ds, t).unwrap();
        assert!((a - b).abs() < 1e-9, "{t}: exact {a} vs elastic-4 {b}");
    }

    // Aggressive: probabilities, and t8 correctly rejected (Example 4.7).
    let aggr = fit(&ds, Method::Aggressive);
    let p = aggr.score_triple(&ds, t8).unwrap();
    assert!(p < 0.5, "aggressive Pr(t8)={p}");
}

/// The PrecRec adapter dispatched through a forced single cluster must
/// match the independent log-space path to floating-point rounding.
#[test]
fn precrec_trait_adapter_matches_independent_path() {
    let ds = figure1();
    let via_adapter = Fuser::fit(
        &FuserConfig::new(Method::PrecRec).with_strategy(ClusterStrategy::SingleCluster),
        &ds,
        ds.gold().unwrap(),
    )
    .unwrap();
    let via_model = fit(&ds, Method::PrecRec);
    assert_eq!(via_adapter.clustering().len(), 1);
    assert_eq!(via_model.clustering().len(), ds.n_sources());
    for t in ds.triples() {
        let a = via_adapter.score_triple(&ds, t).unwrap();
        let b = via_model.score_triple(&ds, t).unwrap();
        assert!((a - b).abs() < 1e-12, "{t}: adapter {a} vs model {b}");
    }
}

/// The standalone PrecRec adapter agrees with `PrecRecModel` on every
/// observation pattern of the Figure 1 fixture's rates.
#[test]
fn precrec_solver_matches_model_on_paper_rates() {
    let recalls = [4.0 / 6.0, 3.0 / 6.0, 4.0 / 6.0, 4.0 / 6.0, 4.0 / 6.0];
    let fprs = [3.0 / 6.0, 4.0 / 6.0, 1.0 / 6.0, 2.0 / 6.0, 2.0 / 6.0];
    let model = PrecRecModel::from_rates(&recalls, &fprs, 0.5).unwrap();
    let solver = PrecRecSolver::from_model(&model, &[0, 1, 2, 3, 4]);
    let joint = example_4_4_joint(); // ignored by the adapter
    let active = SourceSet::full(5);
    for mask in 0..32u64 {
        let mu = solver.mu(&joint, SourceSet(mask), active).unwrap();
        let expected = independent_product(&recalls, &fprs, mask);
        assert!(
            (mu - expected).abs() < 1e-9 * expected.max(1.0),
            "mask {mask:b}: {mu} vs {expected}"
        );
    }
}

fn independent_product(recalls: &[f64], fprs: &[f64], mask: u64) -> f64 {
    let mut mu = 1.0;
    for k in 0..recalls.len() {
        mu *= if mask >> k & 1 == 1 {
            recalls[k] / fprs[k]
        } else {
            (1.0 - recalls[k]) / (1.0 - fprs[k])
        };
    }
    mu
}

/// `ScoringEngine` parallel output must be bitwise identical to serial
/// output for every method, on a dataset large enough to actually engage
/// the parallel path.
#[test]
fn parallel_scores_bitwise_identical_to_serial() {
    let ds = corrfuse::synth::generate(&corrfuse::synth::SynthSpec::uniform(
        8, 0.8, 0.6, 600, 0.5, 4242,
    ))
    .unwrap();
    assert!(
        ds.n_triples() >= corrfuse::core::engine::MIN_PARALLEL_BATCH,
        "fixture too small to engage the parallel path"
    );
    for method in METHODS {
        let fuser = fit(&ds, method);
        let serial = fuser.score_all_with(&ds, &ScoringEngine::serial()).unwrap();
        for threads in [2, 4, 16] {
            let parallel = fuser
                .score_all_with(&ds, &ScoringEngine::with_threads(threads))
                .unwrap();
            assert_eq!(serial, parallel, "{} with {threads} threads", method.name());
        }
    }
}

/// The legacy `score_all_parallel` entry point now routes through the
/// engine and must keep agreeing with `score_all`.
#[test]
fn legacy_parallel_entry_point_matches() {
    let ds = figure1();
    for method in METHODS {
        let fuser = fit(&ds, method);
        let seq = fuser.score_all(&ds).unwrap();
        let par = fuser.score_all_parallel(&ds, 4).unwrap();
        assert_eq!(seq, par, "{}", method.name());
    }
}

/// Pre-refactor, PrecRec ignored the clustering strategy entirely, so it
/// worked on >64-source datasets under every strategy. That must still
/// hold: cluster width only limits the correlated bitmask solvers.
#[test]
fn precrec_still_fits_beyond_64_sources_under_every_strategy() {
    use corrfuse::core::cluster::Clustering;
    use corrfuse::core::dataset::DatasetBuilder;

    // 70 sources, alternating true/false triples with rotating providers.
    let n_sources = 70;
    let mut b = DatasetBuilder::new();
    let sources: Vec<_> = (0..n_sources).map(|i| b.source(format!("S{i}"))).collect();
    for i in 0..40 {
        let t = b.triple("e", "p", format!("v{i}"));
        for k in 0..7 {
            b.observe(sources[(i * 7 + k) % n_sources], t);
        }
        b.label(t, i % 2 == 0);
    }
    let ds = b.build().unwrap();

    let baseline = fit(&ds, Method::PrecRec).score_all(&ds).unwrap();
    // One >64-wide explicit cluster plus strategy variants.
    let strategies = [
        ClusterStrategy::SingleCluster,
        ClusterStrategy::Singletons,
        ClusterStrategy::Explicit(Clustering::from_assignment(vec![0; n_sources])),
    ];
    for strategy in strategies {
        let fuser = Fuser::fit(
            &FuserConfig::new(Method::PrecRec).with_strategy(strategy.clone()),
            &ds,
            ds.gold().unwrap(),
        )
        .unwrap_or_else(|e| panic!("PrecRec must fit with {strategy:?}: {e}"));
        let scores = fuser.score_all(&ds).unwrap();
        for (i, (a, b)) in baseline.iter().zip(&scores).enumerate() {
            assert!(
                (a - b).abs() < 1e-12,
                "{strategy:?}, triple {i}: {a} vs {b}"
            );
        }
    }
    // Correlated methods still refuse a >64-wide cluster with an error
    // (not a panic), under both SingleCluster and Explicit strategies.
    for strategy in [
        ClusterStrategy::SingleCluster,
        ClusterStrategy::Explicit(Clustering::from_assignment(vec![0; n_sources])),
    ] {
        let err = Fuser::fit(
            &FuserConfig::new(Method::Exact).with_strategy(strategy.clone()),
            &ds,
            ds.gold().unwrap(),
        );
        assert!(
            matches!(
                err,
                Err(corrfuse::core::error::FusionError::TooManySources { .. })
            ),
            "{strategy:?}: {err:?}"
        );
    }
}
