//! Bounded-resources equivalence: a session running with *both* new
//! capacity bounds engaged — a small subset-memo cap (evictions live)
//! and the sketch-admission tier on the lift graph — must stay bitwise
//! identical to the unbounded exact configuration over adversarial
//! label-churn streams. This is the trust anchor of the wide-world
//! machinery: eviction only re-routes queries through the existing
//! `scan_counts` rescan, and an unsaturated sketch admits exactly the
//! above-threshold pairs, so neither bound may move a score or a
//! cluster boundary.

use std::cell::RefCell;

use corrfuse::core::cluster::SketchParams;
use corrfuse::core::engine::ScoringEngine;
use corrfuse::core::fuser::{FuserConfig, Method};
use corrfuse::core::testkit::{run_cases, Gen};
use corrfuse::stream::StreamSession;
use corrfuse::synth::{label_churn_stream, ChurnSpec, GroupKind, GroupSpec, Polarity, SynthSpec};

fn random_churn_spec(g: &mut Gen, case_seed: u64) -> ChurnSpec {
    let n_sources = g.usize_in(8, 11);
    let mut base = SynthSpec::uniform(
        n_sources,
        g.f64_in(0.65, 0.9),
        g.f64_in(0.35, 0.6),
        g.usize_in(60, 140),
        0.5,
        case_seed,
    );
    // One five-source clique: a cluster that size memoises up to 2⁵
    // subset masks per joint, so a 1-entry-per-shard memo cap (16
    // shards) is guaranteed to evict — smaller cliques can fit their
    // whole mask range collision-free. A second group gives the churn a
    // boundary to push lifts across.
    base = base
        .with_group(GroupSpec {
            members: vec![0, 1, 2, 3, 4],
            polarity: Polarity::FalseTriples,
            kind: GroupKind::Positive {
                strength: g.f64_in(0.75, 0.95),
            },
        })
        .with_group(GroupSpec {
            members: vec![5, 6],
            polarity: Polarity::TrueTriples,
            kind: GroupKind::Positive {
                strength: g.f64_in(0.5, 0.9),
            },
        });
    ChurnSpec {
        base,
        n_batches: g.usize_in(4, 8),
        flips_per_batch: g.usize_in(2, 7),
        claim_fraction: g.f64_in(0.2, 0.9),
        seed: case_seed.wrapping_mul(53),
    }
}

#[test]
fn bounded_session_stays_bitwise_equal_to_unbounded() {
    let total_evictions: RefCell<u64> = RefCell::new(0);
    let total_pruned: RefCell<u64> = RefCell::new(0);
    run_cases("bounded_equivalence", 8, |g| {
        let case_seed = (g.usize_in(0, usize::MAX / 2)) as u64;
        let spec = random_churn_spec(g, case_seed);
        let method = match g.usize_in(0, 3) {
            0 => Method::Exact,
            1 => Method::Aggressive,
            _ => Method::Elastic(2),
        };
        let mut unbounded = FuserConfig::new(method);
        // Data-driven `Auto` clustering, so the lift graph (and hence
        // the sketch tier) carries every batch.
        unbounded.cluster.max_cluster_size = g.usize_in(5, 7);
        unbounded.cluster.min_support = g.usize_in(1, 4);
        let mut bounded = unbounded.clone();
        // Tiny memo cap (evictions certain once a few subsets go warm)
        // and a sketch whose samples never saturate at this world size
        // (<= 140 labelled triples per polarity), so admission decisions
        // are exact and the bitwise guarantee is unconditional.
        bounded.memo_capacity = Some(g.usize_in(1, 8));
        bounded.cluster.sketch = SketchParams {
            enabled: true,
            sample_size: 256,
            margin: 0.5,
        };
        // Per-joint ceiling: the memo shards round the cap up to one
        // entry per shard (16 shards).
        let per_joint_bound = 16 * bounded.memo_capacity.unwrap().div_ceil(16) as u64;
        let (seed, batches) = label_churn_stream(&spec).expect("churn generation succeeds");
        let mut capped = StreamSession::with_engine(bounded, seed.clone(), ScoringEngine::serial())
            .expect("bounded session fits");
        let mut free = StreamSession::with_engine(unbounded, seed, ScoringEngine::serial())
            .expect("unbounded session fits");
        for (i, batch) in batches.iter().enumerate() {
            let da = capped.ingest(batch).expect("bounded ingest");
            let db = free.ingest(batch).expect("unbounded ingest");
            assert_eq!(da.refit, db.refit, "batch {i}: refit levels diverged");
            assert_eq!(
                capped.fuser().clustering(),
                free.fuser().clustering(),
                "batch {i}: clustering diverged"
            );
            for (j, (a, b)) in capped.scores().iter().zip(free.scores()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "batch {i}, triple {j}: bounded {a} vs unbounded {b}"
                );
            }
            let stats = capped.joint_delta_stats();
            let memo_bound = per_joint_bound * capped.fuser().n_cluster_units() as u64;
            assert!(
                stats.memo_entries <= memo_bound,
                "batch {i}: {} memo entries over the {memo_bound} bound",
                stats.memo_entries
            );
            *total_evictions.borrow_mut() += stats.memo_evictions;
        }
        *total_pruned.borrow_mut() += capped.lift_stats().pairs_sketch_pruned;
        // The unbounded side must never have engaged either bound.
        assert_eq!(free.joint_delta_stats().memo_evictions, 0);
        assert_eq!(free.lift_stats().pairs_sketch_pruned, 0);
    });
    // The suite must actually exercise both bounds, not just configure
    // them.
    assert!(
        *total_evictions.borrow() > 0,
        "no case ever evicted a memo entry"
    );
    assert!(
        *total_pruned.borrow() > 0,
        "no case ever sketch-pruned a pair"
    );
}
