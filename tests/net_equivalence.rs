//! The network subsystem's trust anchor, as a property over random
//! remote-producer workloads: events ingested through **real TCP
//! loopback connections** — any shard count, pipelined clients, forced
//! mid-stream disconnect/reconnects with at-least-once resend, random
//! backpressure, journal rotation — produce per-shard state whose
//! scores are **bitwise identical** to a from-scratch
//! `Fuser::fit + score_all` on the accumulated dataset, and the
//! tenant-scoped scores read back *over the wire* are bitwise identical
//! to that same fit.

use std::time::Duration;

use corrfuse::core::fuser::{Fuser, FuserConfig, Method};
use corrfuse::core::testkit::{run_cases, Gen};
use corrfuse::net::server::spawn;
use corrfuse::net::{Client, ClientConfig, Server, ServerConfig};
use corrfuse::serve::tenant::NAMESPACE_SEP;
use corrfuse::serve::{Backpressure, JournalConfig, RouterConfig, ShardRouter, TenantId};
use corrfuse::stream::StreamSession;
use corrfuse::synth::{remote_producer_scripts, MultiTenantSpec, ProducerAction, RemoteSpec};

fn random_method(g: &mut Gen) -> Method {
    match g.usize_in(0, 3) {
        0 => Method::PrecRec,
        1 => Method::Exact,
        _ => Method::Aggressive,
    }
}

#[test]
fn tcp_loopback_ingestion_equals_batch_fit() {
    let dir = std::env::temp_dir().join(format!("corrfuse-net-eq-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    run_cases("net_equivalence", 4, |g| {
        let case_dir = dir.join(format!("case-{}", g.usize_in(0, usize::MAX / 2)));
        std::fs::create_dir_all(&case_dir).unwrap();
        let n_tenants = g.usize_in(2, 5);
        let spec = RemoteSpec {
            tenants: MultiTenantSpec {
                n_tenants,
                triples_largest: g.usize_in(80, 130),
                skew: g.f64_in(0.0, 1.5),
                n_sources: g.usize_in(3, 5),
                batches_largest: g.usize_in(3, 6),
                label_fraction: g.f64_in(0.0, 0.5),
                seed: g.usize_in(0, usize::MAX / 2) as u64,
            },
            n_producers: g.usize_in(1, 4),
            reconnect_every: if g.bool(0.7) {
                Some(g.usize_in(1, 4))
            } else {
                None
            },
        };
        let workload = remote_producer_scripts(&spec).expect("workload generates");
        eprintln!(
            "case: {} tenants, {} producers, {} events, reconnect_every {:?}",
            n_tenants,
            spec.n_producers,
            workload.n_events(),
            spec.reconnect_every
        );
        let config = FuserConfig::new(random_method(g));
        let n_shards = g.usize_in(1, n_tenants);
        // Either lossless blocking backpressure with deep pipelining, or
        // a rejecting policy with a strictly-ordered (1 in-flight)
        // retrying client — the two order-safe deployment shapes the
        // protocol documents.
        let (backpressure, client_config) = if g.bool(0.5) {
            (
                Backpressure::Block,
                ClientConfig::new().with_max_in_flight(g.usize_in(2, 32)),
            )
        } else {
            (
                if g.bool(0.5) {
                    Backpressure::Reject
                } else {
                    Backpressure::Timeout(Duration::from_millis(g.usize_in(1, 5) as u64))
                },
                ClientConfig::new()
                    .with_max_in_flight(1)
                    .with_busy_retries(10_000, Duration::from_micros(200)),
            )
        };
        let router_cfg = RouterConfig::new(n_shards)
            .with_queue_capacity(g.usize_in(1, 64))
            .with_backpressure(backpressure)
            .with_batching(g.usize_in(1, 256), Duration::from_millis(1))
            .with_journal(
                JournalConfig::new(&case_dir).with_rotate_max_batches(g.usize_in(1, 4) as u64),
            );
        let seeds = workload
            .seeds
            .iter()
            .map(|(t, ds)| (TenantId(*t), ds.clone()))
            .collect();
        let router =
            ShardRouter::new(config.clone(), router_cfg, seeds).expect("router constructs");
        let server =
            Server::bind("127.0.0.1:0", router, ServerConfig::new()).expect("server binds");
        let addr = server.local_addr().expect("bound addr").to_string();
        let (handle, join) = spawn(server).expect("server spawns");

        // One real TCP client per producer, each replaying its script —
        // disconnects included — then flushing (read-your-writes).
        std::thread::scope(|scope| {
            for script in &workload.scripts {
                let addr = addr.clone();
                let client_config = client_config.clone();
                scope.spawn(move || {
                    let mut client =
                        Client::connect_with(&addr, client_config).expect("producer connects");
                    for action in &script.actions {
                        match action {
                            ProducerAction::Send { tenant, events } => {
                                client
                                    .ingest(TenantId(*tenant), events)
                                    .expect("pipelined ingest accepted");
                            }
                            ProducerAction::Reconnect => client.disconnect(),
                        }
                    }
                    client.flush().expect("producer flush");
                    if script.n_reconnects() > 0 {
                        assert!(
                            client.reconnects() >= script.n_reconnects() as u64,
                            "forced disconnects must really reconnect"
                        );
                    }
                });
            }
        });

        // Read every tenant's scores back over the wire.
        let mut reader = Client::connect(&addr).expect("reader connects");
        reader.flush().expect("global barrier");
        let wire_scores: Vec<(u32, Vec<f64>)> = workload
            .seeds
            .iter()
            .map(|(t, _)| (*t, reader.scores(TenantId(*t)).expect("tenant scores")))
            .collect();
        drop(reader);

        handle.stop();
        let stats = join.join().expect("accept thread").expect("graceful stop");
        let agg = stats.aggregate();
        assert_eq!(agg.ingest_errors, 0, "{:?}", agg.last_error);

        // Per shard: the journal replays to the accumulated dataset; a
        // from-scratch fit on it must match the shard's served state
        // bitwise — and the scores each tenant read over TCP must be
        // that same fit, filtered to the tenant's namespace.
        for shard in 0..n_shards {
            let journal = JournalConfig::new(&case_dir).shard_path(shard);
            let restored =
                StreamSession::restore(config.clone(), &journal).expect("journal restores");
            let ds = restored.dataset();
            let fresh = Fuser::fit(&config, ds, ds.gold().expect("shard gold"))
                .expect("fresh fit succeeds");
            let fresh_scores = fresh.score_all(ds).expect("fresh scoring");
            for (i, (a, b)) in restored.scores().iter().zip(&fresh_scores).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "shard {shard}, triple {i}: replayed {a} vs batch fit {b}"
                );
            }
            for (tenant, over_wire) in &wire_scores {
                if *tenant as usize % n_shards != shard {
                    continue;
                }
                // Tenant-local triple order is registration order, which
                // is shard-id order filtered to the tenant's namespace.
                let prefix = format!("{tenant}{NAMESPACE_SEP}");
                let expected: Vec<f64> = ds
                    .triples()
                    .filter(|t| ds.triple(*t).subject.starts_with(&prefix))
                    .map(|t| fresh_scores[t.index()])
                    .collect();
                assert_eq!(
                    over_wire.len(),
                    expected.len(),
                    "tenant {tenant} triple count over the wire"
                );
                for (i, (a, b)) in over_wire.iter().zip(&expected).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "tenant {tenant}, local triple {i}: wire {a} vs batch fit {b}"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&case_dir).ok();
    });
    std::fs::remove_dir_all(&dir).ok();
}
