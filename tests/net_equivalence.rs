//! The network subsystem's trust anchor, as a property over random
//! remote-producer workloads: events ingested through **real TCP
//! loopback connections** — any shard count, pipelined clients, forced
//! mid-stream disconnect/reconnects with at-least-once resend, random
//! backpressure, journal rotation — produce per-shard state whose
//! scores are **bitwise identical** to a from-scratch
//! `Fuser::fit + score_all` on the accumulated dataset, and the
//! tenant-scoped scores read back *over the wire* are bitwise identical
//! to that same fit.
//!
//! Every property runs against **both server back ends** — the random
//! workload alternates between thread-per-connection and the readiness
//! reactor (`ServerConfig::reactor(true)`), and the idle-scale test
//! holds 10⁴ idle connections on the reactor while producers ingest —
//! so the equivalence chain (reactor == threads == from-scratch fit)
//! is pinned bitwise at the wire.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use corrfuse::core::fuser::{Fuser, FuserConfig, Method};
use corrfuse::core::testkit::{run_cases, Gen};
use corrfuse::net::server::spawn;
use corrfuse::net::{
    raise_nofile_limit, Client, ClientConfig, Frame, Request, Response, Server, ServerConfig,
};
use corrfuse::serve::tenant::NAMESPACE_SEP;
use corrfuse::serve::{Backpressure, JournalConfig, RouterConfig, ShardRouter, TenantId};
use corrfuse::stream::StreamSession;
use corrfuse::synth::{remote_producer_scripts, MultiTenantSpec, ProducerAction, RemoteSpec};

fn random_method(g: &mut Gen) -> Method {
    match g.usize_in(0, 3) {
        0 => Method::PrecRec,
        1 => Method::Exact,
        _ => Method::Aggressive,
    }
}

#[test]
fn tcp_loopback_ingestion_equals_batch_fit() {
    let dir = std::env::temp_dir().join(format!("corrfuse-net-eq-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    run_cases("net_equivalence", 4, |g| {
        let case_dir = dir.join(format!("case-{}", g.usize_in(0, usize::MAX / 2)));
        std::fs::create_dir_all(&case_dir).unwrap();
        let n_tenants = g.usize_in(2, 5);
        let spec = RemoteSpec {
            tenants: MultiTenantSpec {
                n_tenants,
                triples_largest: g.usize_in(80, 130),
                skew: g.f64_in(0.0, 1.5),
                n_sources: g.usize_in(3, 5),
                batches_largest: g.usize_in(3, 6),
                label_fraction: g.f64_in(0.0, 0.5),
                seed: g.usize_in(0, usize::MAX / 2) as u64,
            },
            n_producers: g.usize_in(1, 4),
            reconnect_every: if g.bool(0.7) {
                Some(g.usize_in(1, 4))
            } else {
                None
            },
        };
        let workload = remote_producer_scripts(&spec).expect("workload generates");
        // Alternate the server back end so every property in this suite
        // pins both; deterministic (not g-drawn) so neither back end
        // can dodge coverage on a small case count.
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let reactor = CASE.fetch_add(1, Ordering::Relaxed) % 2 == 1;
        eprintln!(
            "case: {} tenants, {} producers, {} events, reconnect_every {:?}, reactor {}",
            n_tenants,
            spec.n_producers,
            workload.n_events(),
            spec.reconnect_every,
            reactor,
        );
        let config = FuserConfig::new(random_method(g));
        let n_shards = g.usize_in(1, n_tenants);
        // Either lossless blocking backpressure with deep pipelining, or
        // a rejecting policy with a strictly-ordered (1 in-flight)
        // retrying client — the two order-safe deployment shapes the
        // protocol documents.
        let (backpressure, client_config) = if g.bool(0.5) {
            (
                Backpressure::Block,
                ClientConfig::new().with_max_in_flight(g.usize_in(2, 32)),
            )
        } else {
            (
                if g.bool(0.5) {
                    Backpressure::Reject
                } else {
                    Backpressure::Timeout(Duration::from_millis(g.usize_in(1, 5) as u64))
                },
                ClientConfig::new()
                    .with_max_in_flight(1)
                    .with_busy_retries(10_000, Duration::from_micros(200)),
            )
        };
        let router_cfg = RouterConfig::new(n_shards)
            .with_queue_capacity(g.usize_in(1, 64))
            .with_backpressure(backpressure)
            .with_batching(g.usize_in(1, 256), Duration::from_millis(1))
            .with_journal(
                JournalConfig::new(&case_dir).with_rotate_max_batches(g.usize_in(1, 4) as u64),
            );
        let seeds = workload
            .seeds
            .iter()
            .map(|(t, ds)| (TenantId(*t), ds.clone()))
            .collect();
        let router =
            ShardRouter::new(config.clone(), router_cfg, seeds).expect("router constructs");
        let server = Server::bind("127.0.0.1:0", router, ServerConfig::new().reactor(reactor))
            .expect("server binds");
        let addr = server.local_addr().expect("bound addr").to_string();
        let (handle, join) = spawn(server).expect("server spawns");

        // One real TCP client per producer, each replaying its script —
        // disconnects included — then flushing (read-your-writes).
        std::thread::scope(|scope| {
            for script in &workload.scripts {
                let addr = addr.clone();
                let client_config = client_config.clone();
                scope.spawn(move || {
                    let mut client =
                        Client::connect_with(&addr, client_config).expect("producer connects");
                    for action in &script.actions {
                        match action {
                            ProducerAction::Send { tenant, events } => {
                                client
                                    .ingest(TenantId(*tenant), events)
                                    .expect("pipelined ingest accepted");
                            }
                            ProducerAction::Reconnect => client.disconnect(),
                        }
                    }
                    client.flush().expect("producer flush");
                    if script.n_reconnects() > 0 {
                        assert!(
                            client.reconnects() >= script.n_reconnects() as u64,
                            "forced disconnects must really reconnect"
                        );
                    }
                });
            }
        });

        // Read every tenant's scores back over the wire.
        let mut reader = Client::connect(&addr).expect("reader connects");
        reader.flush().expect("global barrier");
        let wire_scores: Vec<(u32, Vec<f64>)> = workload
            .seeds
            .iter()
            .map(|(t, _)| (*t, reader.scores(TenantId(*t)).expect("tenant scores")))
            .collect();
        drop(reader);

        handle.stop();
        let stats = join.join().expect("accept thread").expect("graceful stop");
        let agg = stats.aggregate();
        assert_eq!(agg.ingest_errors, 0, "{:?}", agg.last_error);

        // Per shard: the journal replays to the accumulated dataset; a
        // from-scratch fit on it must match the shard's served state
        // bitwise — and the scores each tenant read over TCP must be
        // that same fit, filtered to the tenant's namespace.
        for shard in 0..n_shards {
            let journal = JournalConfig::new(&case_dir).shard_path(shard);
            let restored =
                StreamSession::restore(config.clone(), &journal).expect("journal restores");
            let ds = restored.dataset();
            let fresh = Fuser::fit(&config, ds, ds.gold().expect("shard gold"))
                .expect("fresh fit succeeds");
            let fresh_scores = fresh.score_all(ds).expect("fresh scoring");
            for (i, (a, b)) in restored.scores().iter().zip(&fresh_scores).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "shard {shard}, triple {i}: replayed {a} vs batch fit {b}"
                );
            }
            for (tenant, over_wire) in &wire_scores {
                if *tenant as usize % n_shards != shard {
                    continue;
                }
                // Tenant-local triple order is registration order, which
                // is shard-id order filtered to the tenant's namespace.
                let prefix = format!("{tenant}{NAMESPACE_SEP}");
                let expected: Vec<f64> = ds
                    .triples()
                    .filter(|t| ds.triple(*t).subject.starts_with(&prefix))
                    .map(|t| fresh_scores[t.index()])
                    .collect();
                assert_eq!(
                    over_wire.len(),
                    expected.len(),
                    "tenant {tenant} triple count over the wire"
                );
                for (i, (a, b)) in over_wire.iter().zip(&expected).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "tenant {tenant}, local triple {i}: wire {a} vs batch fit {b}"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&case_dir).ok();
    });
    std::fs::remove_dir_all(&dir).ok();
}

/// The raw HELLO handshake for a bare idle connection.
fn raw_handshake(stream: &mut TcpStream) {
    Request::Hello {
        min_version: 1,
        max_version: 1,
        credential: None,
    }
    .to_frame()
    .write_to(stream)
    .expect("hello");
    stream.flush().expect("hello flush");
    let frame = Frame::read_from(stream).expect("hello response").unwrap();
    match Response::from_frame(&frame).expect("hello decodes") {
        Response::HelloOk { .. } => {}
        other => panic!("expected HELLO_OK, got {other:?}"),
    }
}

/// Idle scale: one reactor thread holds 10⁴ idle connections (file
/// descriptors, not threads) while 8 producers ingest; the scores read
/// over the wire are bitwise identical to the thread-per-connection
/// back end fed the same workload and to a from-scratch
/// `Fuser::fit + score_all` on the accumulated (journal-replayed)
/// dataset — and the idle connections are still being served
/// afterwards. `CORRFUSE_QUICK` shrinks the fleet for smoke tiers.
#[test]
fn reactor_idle_scale_matches_thread_backend_and_batch_fit() {
    let quick = std::env::var("CORRFUSE_QUICK").is_ok();
    let target_idle: usize = if quick { 2_000 } else { 10_000 };
    // Each loopback connection costs two fds (client + server end);
    // keep headroom for journals, producers and the test harness.
    let effective = raise_nofile_limit((target_idle * 2 + 512) as u64);
    let n_idle = target_idle.min((effective.saturating_sub(512) / 2) as usize);
    eprintln!("idle-scale: {n_idle} idle connections (nofile limit {effective})");

    let spec = RemoteSpec {
        tenants: MultiTenantSpec {
            n_tenants: 4,
            triples_largest: 100,
            skew: 0.7,
            n_sources: 4,
            batches_largest: 4,
            label_fraction: 0.3,
            seed: 4242,
        },
        n_producers: 8,
        reconnect_every: None,
    };
    let workload = remote_producer_scripts(&spec).expect("workload generates");
    let config = FuserConfig::new(Method::PrecRec);
    let n_shards = 2;
    let dir = std::env::temp_dir().join(format!("corrfuse-idle-scale-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let run = |reactor: bool, n_idle: usize, journal_dir: Option<&std::path::Path>| {
        let mut router_cfg = RouterConfig::new(n_shards)
            .with_threshold(0.5)
            .with_batching(64, Duration::from_millis(1));
        if let Some(d) = journal_dir {
            std::fs::create_dir_all(d).unwrap();
            router_cfg = router_cfg.with_journal(JournalConfig::new(d));
        }
        let seeds = workload
            .seeds
            .iter()
            .map(|(t, ds)| (TenantId(*t), ds.clone()))
            .collect();
        let router = ShardRouter::new(config.clone(), router_cfg, seeds).expect("router");
        let server = Server::bind(
            "127.0.0.1:0",
            router,
            ServerConfig::new()
                .reactor(reactor)
                .with_max_connections(n_idle + 64),
        )
        .expect("server binds");
        let addr = server.local_addr().expect("addr");
        let (handle, join) = spawn(server).expect("server spawns");

        // The idle fleet: fully handshaken connections that then just
        // sit there. Connected from a few threads so the single-core
        // host overlaps client and reactor work.
        let n_threads = 8;
        let mut idle: Vec<TcpStream> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..n_threads)
                .map(|i| {
                    let quota = n_idle / n_threads + usize::from(i < n_idle % n_threads);
                    scope.spawn(move || {
                        (0..quota)
                            .map(|_| {
                                let mut s = TcpStream::connect(addr).expect("idle connect");
                                raw_handshake(&mut s);
                                s
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            joins.into_iter().flat_map(|j| j.join().unwrap()).collect()
        });
        assert_eq!(idle.len(), n_idle);

        // 8 active producers ingest through the same server while the
        // idle fleet sits registered.
        std::thread::scope(|scope| {
            for script in &workload.scripts {
                let addr = addr.to_string();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("producer connects");
                    for action in &script.actions {
                        match action {
                            ProducerAction::Send { tenant, events } => {
                                client.ingest(TenantId(*tenant), events).expect("ingest");
                            }
                            ProducerAction::Reconnect => client.disconnect(),
                        }
                    }
                    client.flush().expect("producer flush");
                });
            }
        });

        let mut reader = Client::connect(addr.to_string()).expect("reader connects");
        reader.flush().expect("barrier");
        let wire_scores: Vec<(u32, Vec<f64>)> = workload
            .seeds
            .iter()
            .map(|(t, _)| (*t, reader.scores(TenantId(*t)).expect("scores")))
            .collect();
        drop(reader);

        // The idle fleet is still served after all that traffic: a
        // sample of connections must still round-trip a PING.
        let ping = Request::Ping.to_frame().encode();
        for s in idle.iter_mut().step_by((n_idle / 64).max(1)) {
            s.write_all(&ping).expect("idle ping");
            s.flush().expect("idle ping flush");
            let frame = Frame::read_from(s).expect("idle pong").unwrap();
            match Response::from_frame(&frame).expect("idle pong decodes") {
                Response::Pong => {}
                other => panic!("expected PONG on an idle connection, got {other:?}"),
            }
        }
        drop(idle);

        handle.stop();
        let stats = join.join().expect("serve thread").expect("graceful stop");
        assert_eq!(stats.aggregate().ingest_errors, 0);
        wire_scores
    };

    let journal_dir = dir.join("reactor");
    let reactor_scores = run(true, n_idle, Some(&journal_dir));
    let thread_scores = run(false, 0, None);

    // Axis 1: the two back ends are bitwise identical at the wire.
    assert_eq!(reactor_scores.len(), thread_scores.len());
    for ((t_a, a), (t_b, b)) in reactor_scores.iter().zip(&thread_scores) {
        assert_eq!(t_a, t_b);
        assert_eq!(a.len(), b.len(), "tenant {t_a} score count");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "tenant {t_a}, triple {i}: reactor {x} vs threads {y}"
            );
        }
    }

    // Axis 2: the reactor-served state equals a from-scratch
    // `Fuser::fit + score_all` on the accumulated dataset.
    for shard in 0..n_shards {
        let journal = JournalConfig::new(&journal_dir).shard_path(shard);
        let restored = StreamSession::restore(config.clone(), &journal).expect("journal restores");
        let ds = restored.dataset();
        let fresh = Fuser::fit(&config, ds, ds.gold().expect("shard gold")).expect("fresh fit");
        let fresh_scores = fresh.score_all(ds).expect("fresh scoring");
        for (tenant, over_wire) in &reactor_scores {
            if *tenant as usize % n_shards != shard {
                continue;
            }
            let prefix = format!("{tenant}{NAMESPACE_SEP}");
            let expected: Vec<f64> = ds
                .triples()
                .filter(|t| ds.triple(*t).subject.starts_with(&prefix))
                .map(|t| fresh_scores[t.index()])
                .collect();
            assert_eq!(over_wire.len(), expected.len(), "tenant {tenant} count");
            for (i, (a, b)) in over_wire.iter().zip(&expected).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "tenant {tenant}, local triple {i}: wire {a} vs batch fit {b}"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
