//! The live-migration subsystem's trust anchor, as a property over
//! random chaos schedules: a tenant bounced between shards — while its
//! co-tenants keep ingesting **over real TCP loopback**, migrations run
//! concurrently with the write path, chaos aborts crash migrations at
//! every abortable stage, journals rotate mid-stream, and duplicate
//! bursts replay already-applied messages — ends with scores and
//! decisions **bitwise identical** to a never-migrated solo twin fed
//! the same event stream, both read in process and over the wire.
//! Crash-aborted migrations must roll back cleanly (the tenant's scores
//! are untouched) and committed ones must be visible in the per-shard
//! migration counters.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use corrfuse::core::engine::ScoringEngine;
use corrfuse::core::fuser::{FuserConfig, Method};
use corrfuse::core::testkit::run_cases;
use corrfuse::net::server::spawn;
use corrfuse::net::{Client, Server, ServerConfig};
use corrfuse::serve::{
    JournalConfig, MigrationReport, MigrationStage, RouterConfig, ServeError, ShardRouter, TenantId,
};
use corrfuse::stream::StreamSession;
use corrfuse::synth::{migration_scenario, MigrationFault, MigrationScenarioSpec, MultiTenantSpec};

/// The tenant the chaos schedule keeps bouncing between shards.
const HOT: TenantId = TenantId(0);

fn join_migration(pending: &mut Option<JoinHandle<MigrationReport>>, successes: &mut u64) {
    if let Some(h) = pending.take() {
        let report = h.join().expect("migration thread");
        assert_eq!(report.tenant, HOT);
        *successes += 1;
    }
}

/// Assert the served scores of `tenant` are bitwise the twin's.
fn assert_bitwise(what: &str, tenant: TenantId, served: &[f64], twin: &[f64]) {
    assert_eq!(served.len(), twin.len(), "{what}: tenant {tenant} length");
    for (i, (a, b)) in served.iter().zip(twin).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: tenant {tenant}, triple {i}: served {a} vs twin {b}"
        );
    }
}

#[test]
fn migrated_tenant_equals_never_migrated_twin() {
    let dir = std::env::temp_dir().join(format!("corrfuse-migration-eq-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    run_cases("migration_equivalence", 3, |g| {
        let case_dir = dir.join(format!("case-{}", g.usize_in(0, usize::MAX / 2)));
        let n_tenants = g.usize_in(2, 5);
        let spec = MigrationScenarioSpec {
            tenants: MultiTenantSpec {
                n_tenants,
                triples_largest: g.usize_in(80, 130),
                skew: g.f64_in(0.0, 1.5),
                n_sources: g.usize_in(3, 5),
                batches_largest: g.usize_in(3, 6),
                label_fraction: g.f64_in(0.0, 0.5),
                seed: g.usize_in(0, usize::MAX / 2) as u64,
            },
            n_migrations: g.usize_in(2, 5),
            n_crashes: g.usize_in(1, 4),
            n_rotations: g.usize_in(1, 3),
            n_bursts: g.usize_in(1, 3),
            seed: g.usize_in(0, usize::MAX / 2) as u64,
        };
        let scenario = migration_scenario(&spec).expect("scenario generates");
        // The pinned empirical prior keeps co-tenants statistically
        // decoupled, so a routed tenant is comparable to a solo twin.
        let config = FuserConfig::new(Method::PrecRec).with_alpha(0.5);
        // Every shard needs a seed tenant; at least two shards so the
        // hot tenant always has somewhere to go.
        let n_shards = g.usize_in(2, n_tenants.min(4) + 1);
        let journaling = g.bool(0.6);
        let mut router_cfg =
            RouterConfig::new(n_shards).with_batching(g.usize_in(1, 64), Duration::from_millis(1));
        if journaling {
            std::fs::create_dir_all(&case_dir).unwrap();
            // Aggressive rotation so journal compaction keeps landing
            // around migration commits and route persistence.
            router_cfg = router_cfg.with_journal(
                JournalConfig::new(&case_dir).with_rotate_max_batches(g.usize_in(2, 5) as u64),
            );
        }
        let seeds: Vec<(TenantId, _)> = scenario
            .stream
            .seeds
            .iter()
            .map(|(t, ds)| (TenantId(*t), ds.clone()))
            .collect();
        eprintln!(
            "case: {} tenants, {} shards, {} messages, journal {}, faults {:?}",
            n_tenants,
            n_shards,
            scenario.stream.messages.len(),
            journaling,
            scenario.faults,
        );

        // Never-migrated twins: one solo serial session per tenant, fed
        // the identical event stream.
        let mut twins: HashMap<u32, StreamSession> = scenario
            .stream
            .seeds
            .iter()
            .map(|(t, ds)| {
                let solo =
                    StreamSession::with_engine(config.clone(), ds.clone(), ScoringEngine::serial())
                        .expect("twin constructs");
                (*t, solo)
            })
            .collect();

        let router =
            ShardRouter::new(config.clone(), router_cfg, seeds).expect("router constructs");
        let server = Server::bind("127.0.0.1:0", router, ServerConfig::new()).expect("binds");
        let addr = server.local_addr().expect("bound addr").to_string();
        let router = server.router_handle();
        let (handle, join) = spawn(server).expect("server spawns");
        let mut client = Client::connect(&addr).expect("client connects");

        let mut pending: Option<JoinHandle<MigrationReport>> = None;
        let mut successes = 0u64;
        let mut crashes = 0u64;
        for (i, (tenant, events)) in scenario.stream.messages.iter().enumerate() {
            client.ingest(TenantId(*tenant), events).expect("ingest");
            twins.get_mut(tenant).unwrap().ingest(events).expect("twin");
            match scenario.fault_after(i) {
                Some(MigrationFault::Migrate) => {
                    // One migration at a time: the router rejects a
                    // concurrent second attempt by design.
                    join_migration(&mut pending, &mut successes);
                    let to = (router.shard_of(HOT) + 1) % n_shards;
                    let r = Arc::clone(&router);
                    // Live: the migration races the ingest that follows.
                    pending = Some(std::thread::spawn(move || {
                        r.migrate_tenant(HOT, to).expect("live migration")
                    }));
                }
                Some(MigrationFault::CrashedMigrate(stage)) => {
                    join_migration(&mut pending, &mut successes);
                    let to = (router.shard_of(HOT) + 1) % n_shards;
                    let stage = match stage {
                        0 => MigrationStage::Planning,
                        1 => MigrationStage::BulkReplay,
                        _ => MigrationStage::CutOver,
                    };
                    let err = router.migrate_tenant_chaos(HOT, to, stage).unwrap_err();
                    assert!(
                        matches!(err, ServeError::MigrationFailed { tenant, stage: at, .. }
                            if tenant == HOT && at == stage),
                        "expected rollback at {stage}, got {err:?}"
                    );
                    crashes += 1;
                    // Rolled back cleanly: the tenant's scores are
                    // bitwise what the twin computes at this point.
                    client.flush().expect("post-crash flush");
                    assert_bitwise(
                        "post-crash",
                        HOT,
                        &router.scores(HOT).expect("post-crash scores"),
                        twins[&HOT.0].scores(),
                    );
                }
                Some(MigrationFault::RotateJournals) => {
                    // A flush barrier forces buffered batches through the
                    // rotation check while migrations are in flight.
                    client.flush().expect("rotation flush");
                }
                Some(MigrationFault::IngestBurst) => {
                    // Replay recent messages verbatim on both sides;
                    // idempotent ingest must keep the states identical
                    // whichever shard the duplicates now land on.
                    let k = g.usize_in(1, 4).min(i + 1);
                    for (t, ev) in &scenario.stream.messages[i + 1 - k..=i] {
                        client.ingest(TenantId(*t), ev).expect("burst ingest");
                        twins.get_mut(t).unwrap().ingest(ev).expect("twin burst");
                    }
                }
                None => {}
            }
        }
        join_migration(&mut pending, &mut successes);
        client.flush().expect("final flush");

        // Every tenant — migrated or not — serves its twin's exact
        // state, in process and over the wire.
        for (tenant, _) in &scenario.stream.seeds {
            let tenant = TenantId(*tenant);
            let twin = &twins[&tenant.0];
            let served = router.scores(tenant).expect("in-process scores");
            let wire = client.scores(tenant).expect("wire scores");
            assert_bitwise("in-process", tenant, &served, twin.scores());
            assert_bitwise("wire", tenant, &wire, twin.scores());
            assert_eq!(
                router.decisions(tenant).expect("in-process decisions"),
                twin.decisions(),
                "tenant {tenant} decisions"
            );
            assert_eq!(
                client.decisions(tenant).expect("wire decisions"),
                twin.decisions(),
                "tenant {tenant} wire decisions"
            );
        }

        // The migration ledger balances: every commit moved the tenant
        // in somewhere and out somewhere, every chaos abort failed once.
        let agg = router.stats().aggregate();
        assert_eq!(agg.migrations_in, successes, "commits in");
        assert_eq!(agg.migrations_out, successes, "commits out");
        assert_eq!(agg.migrations_failed, crashes, "rollbacks");
        assert_eq!(agg.migrations.len(), n_shards);

        drop(client);
        // The server reclaims sole ownership of the router at stop.
        drop(router);
        handle.stop();
        let stats = join.join().expect("accept thread").expect("server stops");
        assert_eq!(stats.aggregate().ingest_errors, 0);
        std::fs::remove_dir_all(&case_dir).ok();
    });
    std::fs::remove_dir_all(&dir).ok();
}
