//! Adversarial label churn against the incremental core path: gold
//! labels flip back and forth (with claim edges shifting provider sets)
//! over a world whose `Auto` clustering is data-driven, so the
//! maintained joint counts, the maintained lift graph, **and** the
//! incremental re-clustering all get exercised — and after every batch
//! the session must stay **bitwise identical** to a from-scratch
//! `Fuser::fit` + `score_all` on the accumulated dataset.

use std::cell::RefCell;

use corrfuse::core::engine::ScoringEngine;
use corrfuse::core::fuser::{Fuser, FuserConfig, Method};
use corrfuse::core::testkit::{run_cases, Gen};
use corrfuse::stream::{replay, Event, RefitLevel, StreamSession};
use corrfuse::synth::{ChurnSpec, GroupKind, GroupSpec, Polarity, SynthSpec};

fn random_churn_spec(g: &mut Gen, case_seed: u64) -> ChurnSpec {
    let n_sources = g.usize_in(6, 10);
    let mut base = SynthSpec::uniform(
        n_sources,
        g.f64_in(0.65, 0.9),
        g.f64_in(0.35, 0.6),
        g.usize_in(60, 140),
        0.5,
        case_seed,
    );
    // Two correlation groups so the clustering has boundaries for the
    // churn to push lifts across; the remaining sources are independent.
    base = base
        .with_group(GroupSpec {
            members: vec![0, 1],
            polarity: Polarity::FalseTriples,
            kind: GroupKind::Positive {
                strength: g.f64_in(0.6, 0.95),
            },
        })
        .with_group(GroupSpec {
            members: vec![2, 3],
            polarity: Polarity::TrueTriples,
            kind: GroupKind::Positive {
                strength: g.f64_in(0.5, 0.9),
            },
        });
    ChurnSpec {
        base,
        n_batches: g.usize_in(4, 8),
        flips_per_batch: g.usize_in(2, 7),
        claim_fraction: g.f64_in(0.2, 0.9),
        seed: case_seed.wrapping_mul(37),
    }
}

#[test]
fn label_churn_stays_bitwise_equal_to_fresh_fits() {
    let seen: RefCell<Vec<RefitLevel>> = RefCell::new(Vec::new());
    run_cases("label_churn_equivalence", 10, |g| {
        let case_seed = (g.usize_in(0, usize::MAX / 2)) as u64;
        let spec = random_churn_spec(g, case_seed);
        let method = match g.usize_in(0, 3) {
            0 => Method::Exact,
            1 => Method::Aggressive,
            _ => Method::Elastic(2),
        };
        let mut config = FuserConfig::new(method);
        // Cap below the source count: `Auto` goes data-driven and the
        // lift graph + incremental re-clustering carry every batch.
        config.cluster.max_cluster_size = g.usize_in(2, 4);
        config.cluster.min_support = g.usize_in(1, 4);
        let (seed, batches) =
            corrfuse::synth::label_churn_stream(&spec).expect("churn generation succeeds");
        let engine = if g.bool(0.5) {
            ScoringEngine::serial()
        } else {
            ScoringEngine::with_threads(g.usize_in(2, 5))
        };
        let mut session = StreamSession::with_engine(config.clone(), seed.clone(), engine)
            .expect("seed session fits");
        let mut applied: Vec<Event> = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            let delta = session.ingest(batch).expect("churn batch ingests");
            // The whole point of the incremental path: churn must never
            // fall back to a full refit (no sources are added).
            assert_ne!(
                delta.refit,
                RefitLevel::Full,
                "batch {i} fell back to a full refit"
            );
            // (A Cluster refit can legitimately rebuild zero non-trivial
            // units — e.g. a cluster dissolving into singletons — so the
            // reconcile report is informational here.)
            seen.borrow_mut().push(delta.refit);
            applied.extend(batch.iter().cloned());

            let accumulated =
                replay::accumulate(&seed, &applied).expect("accumulated dataset builds");
            let fresh = Fuser::fit(
                session.config(),
                &accumulated,
                accumulated.gold().expect("churn worlds carry gold"),
            )
            .expect("fresh fit succeeds");
            // The incremental clustering must be the one a fresh fit
            // derives...
            assert_eq!(
                session.fuser().clustering(),
                fresh.clustering(),
                "batch {i}: clustering diverged"
            );
            // ...and the scores bitwise equal.
            let batch_scores = fresh
                .score_all(&accumulated)
                .expect("fresh scoring succeeds");
            for (j, (a, b)) in session.scores().iter().zip(&batch_scores).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "batch {i}, triple {j}: incremental {a} vs fresh {b}"
                );
            }
        }
    });
    // The suite must actually exercise the incremental re-clustering:
    // at least one batch across the cases re-partitioned the sources.
    let seen = seen.borrow();
    assert!(
        seen.contains(&RefitLevel::Cluster),
        "no churn batch ever changed the clustering: {seen:?}"
    );
    assert!(
        seen.contains(&RefitLevel::Model),
        "no churn batch stayed at a model-level refresh: {seen:?}"
    );
}
