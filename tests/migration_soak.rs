//! Migration soak: bounce a tenant back and forth between two shards
//! many times, with co-tenant ingest interleaved between every hop, and
//! assert the tenant ends bitwise identical to a never-migrated twin.
//! Repeated round trips are the adversarial part — every hop replays
//! the tenant through translation on a shard that already holds a stale
//! residue of it from the previous visit, so idempotent replay and
//! prefix-consistent residual maps get exercised dozens of times.
//!
//! Set `CORRFUSE_QUICK=1` to run a shortened schedule (CI smoke tier).

use std::time::Duration;

use corrfuse::core::engine::ScoringEngine;
use corrfuse::core::fuser::{FuserConfig, Method};
use corrfuse::serve::{RouterConfig, ShardRouter, TenantId};
use corrfuse::stream::StreamSession;
use corrfuse::synth::{multi_tenant_events, MultiTenantSpec};

#[test]
fn repeated_migrations_stay_bitwise_stable() {
    let quick = std::env::var("CORRFUSE_QUICK").is_ok();
    let hops = if quick { 6 } else { 40 };
    let s = multi_tenant_events(&MultiTenantSpec::new(3, 110, 41)).unwrap();
    let config = FuserConfig::new(Method::PrecRec).with_alpha(0.5);
    let seeds = s
        .seeds
        .iter()
        .map(|(t, ds)| (TenantId(*t), ds.clone()))
        .collect();
    let router = ShardRouter::new(
        config.clone(),
        RouterConfig::new(2).with_batching(16, Duration::from_millis(1)),
        seeds,
    )
    .unwrap();
    let mut twins: Vec<StreamSession> = s
        .seeds
        .iter()
        .map(|(_, ds)| {
            StreamSession::with_engine(config.clone(), ds.clone(), ScoringEngine::serial()).unwrap()
        })
        .collect();
    let hot = TenantId(0);
    let home = router.shard_of(hot);

    // Interleave: a slice of the workload, then a hop, repeatedly,
    // wrapping around the message list so ingest never dries up.
    let per_hop = (s.messages.len() / hops).max(1);
    let mut next = 0usize;
    for hop in 0..hops {
        for _ in 0..per_hop {
            if next < s.messages.len() {
                let (tenant, events) = &s.messages[next];
                router.ingest(TenantId(*tenant), events.clone()).unwrap();
                twins[*tenant as usize].ingest(events).unwrap();
                next += 1;
            }
        }
        let from = router.shard_of(hot);
        let to = (from + 1) % 2;
        let report = router.migrate_tenant(hot, to).unwrap();
        assert_eq!(report.from, from, "hop {hop}");
        assert_eq!(report.to, to, "hop {hop}");
        assert_eq!(router.shard_of(hot), to, "hop {hop}");
    }
    for (tenant, events) in &s.messages[next..] {
        router.ingest(TenantId(*tenant), events.clone()).unwrap();
        twins[*tenant as usize].ingest(events).unwrap();
    }
    router.flush().unwrap();

    for (tenant, _) in &s.seeds {
        let tenant = TenantId(*tenant);
        let served = router.scores(tenant).unwrap();
        let twin = &twins[tenant.0 as usize];
        assert_eq!(served.len(), twin.scores().len(), "tenant {tenant}");
        for (i, (a, b)) in served.iter().zip(twin.scores()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "tenant {tenant}, triple {i} after {hops} hops: {a} vs {b}"
            );
        }
        assert_eq!(router.decisions(tenant).unwrap(), twin.decisions());
    }
    // An even number of hops returns the tenant home; odd leaves it on
    // the neighbour. Either way the counters balance exactly.
    assert_eq!(router.shard_of(hot), (home + hops) % 2);
    let agg = router.stats().aggregate();
    assert_eq!(agg.migrations_in, hops as u64);
    assert_eq!(agg.migrations_out, hops as u64);
    assert_eq!(agg.migrations_failed, 0);
    let stats = router.shutdown().unwrap();
    assert_eq!(stats.aggregate().ingest_errors, 0);
}
