//! The replication subsystem's trust anchor, as a property over random
//! fault schedules: a read-replica follower fed through **real TCP
//! loopback replication links** — snapshot bootstraps, resumes, forced
//! link disconnects, leader journal rotation under active taps, and
//! follower cold restarts from its own journals — converges to per-shard
//! state whose scores are **bitwise identical** to a from-scratch
//! `Fuser::fit + score_all` on the leader's accumulated dataset at the
//! same epoch, both read in process and over the wire through the
//! read-only follower server; reads demanding epochs beyond the leader's
//! head fail with the typed retryable `STALE` error.

use std::sync::Arc;
use std::time::{Duration, Instant};

use corrfuse::core::fuser::{Fuser, FuserConfig, Method};
use corrfuse::core::testkit::{run_cases, Gen};
use corrfuse::net::error::ErrorCode;
use corrfuse::net::server::spawn;
use corrfuse::net::{Client, NetError, Server, ServerConfig};
use corrfuse::replica::{
    spawn as spawn_follower, Follower, FollowerConfig, FollowerServer, FollowerServerConfig,
    ReplicaError,
};
use corrfuse::serve::tenant::NAMESPACE_SEP;
use corrfuse::serve::{
    Backpressure, JournalConfig, ReplicationConfig, RouterConfig, ServeError, ShardRouter, TenantId,
};
use corrfuse::stream::{FsyncPolicy, StreamSession};
use corrfuse::synth::{follower_scenario, Fault, FollowerScenarioSpec, MultiTenantSpec};

fn random_method(g: &mut Gen) -> Method {
    match g.usize_in(0, 3) {
        0 => Method::PrecRec,
        1 => Method::Exact,
        _ => Method::Aggressive,
    }
}

/// Block until every shard's applied epoch reaches `targets`.
fn await_catchup(follower: &Follower, targets: &[u64]) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let applied = follower.applied_epochs();
        if applied.iter().zip(targets).all(|(a, t)| a >= t) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "follower never caught up: applied {applied:?}, leader {targets:?}, stats {:?}",
            follower.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn follower_reads_equal_leader_fit() {
    let dir = std::env::temp_dir().join(format!("corrfuse-replica-eq-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    run_cases("replica_equivalence", 3, |g| {
        let case_dir = dir.join(format!("case-{}", g.usize_in(0, usize::MAX / 2)));
        let leader_dir = case_dir.join("leader");
        std::fs::create_dir_all(&leader_dir).unwrap();
        let n_tenants = g.usize_in(2, 5);
        let spec = FollowerScenarioSpec {
            tenants: MultiTenantSpec {
                n_tenants,
                triples_largest: g.usize_in(80, 130),
                skew: g.f64_in(0.0, 1.5),
                n_sources: g.usize_in(3, 5),
                batches_largest: g.usize_in(3, 6),
                label_fraction: g.f64_in(0.0, 0.5),
                seed: g.usize_in(0, usize::MAX / 2) as u64,
            },
            n_disconnects: g.usize_in(1, 3),
            n_rotations: g.usize_in(1, 2),
            n_restarts: g.usize_in(0, 2),
            seed: g.usize_in(0, usize::MAX / 2) as u64,
        };
        let scenario = follower_scenario(&spec).expect("scenario generates");
        let config = FuserConfig::new(random_method(g));
        let threshold = g.f64_in(0.3, 0.7);
        let n_shards = g.usize_in(1, n_tenants);
        // Aggressive leader rotation so journal compaction keeps landing
        // mid-subscription (the satellite regression for
        // `JournalWriter::rotate` under live replication taps), and a
        // sometimes-tiny backlog so disconnected links genuinely fall
        // off the tail and re-bootstrap from a snapshot.
        let replication = if g.bool(0.5) {
            ReplicationConfig::new()
                .with_backlog_batches(g.usize_in(1, 4))
                .with_subscriber_capacity(g.usize_in(2, 8))
        } else {
            ReplicationConfig::new()
        };
        let router_cfg = RouterConfig::new(n_shards)
            .with_backpressure(Backpressure::Block)
            .with_batching(g.usize_in(1, 128), Duration::from_millis(1))
            .with_threshold(threshold)
            .with_journal(
                JournalConfig::new(&leader_dir).with_rotate_max_batches(g.usize_in(1, 3) as u64),
            )
            .with_replication(replication);
        let seeds = scenario
            .stream
            .seeds
            .iter()
            .map(|(t, ds)| (TenantId(*t), ds.clone()))
            .collect();
        let router =
            ShardRouter::new(config.clone(), router_cfg, seeds).expect("router constructs");
        let server =
            Server::bind("127.0.0.1:0", router, ServerConfig::new()).expect("leader binds");
        let addr = server.local_addr().expect("bound addr").to_string();
        let (handle, join) = spawn(server).expect("leader spawns");

        let journal_dir = g.bool(0.7).then(|| case_dir.join("follower"));
        let follower_config = || {
            let mut cfg = FollowerConfig::new(config.clone())
                .with_threshold(threshold)
                .with_catchup_timeout(Duration::from_millis(200))
                .with_reconnect_backoff(Duration::from_millis(2));
            if let Some(d) = &journal_dir {
                cfg = cfg.with_journal_dir(d, FsyncPolicy::Never);
            }
            cfg
        };
        // Sometimes the follower watches from the seed epoch, sometimes
        // it joins mid-stream and must bootstrap from a live snapshot.
        let connect_at = if g.bool(0.5) {
            0
        } else {
            g.usize_in(1, scenario.stream.messages.len())
        };
        eprintln!(
            "case: {} tenants, {} shards, {} messages, faults {:?}, journal {}, connect_at {}",
            n_tenants,
            n_shards,
            scenario.stream.messages.len(),
            scenario.faults,
            journal_dir.is_some(),
            connect_at,
        );

        let mut client = Client::connect(&addr).expect("ingest client connects");
        let mut follower: Option<Follower> = None;
        for (i, (tenant, events)) in scenario.stream.messages.iter().enumerate() {
            if i == connect_at {
                follower =
                    Some(Follower::connect(&addr, follower_config()).expect("follower connects"));
            }
            client
                .ingest(TenantId(*tenant), events)
                .expect("leader ingest");
            match scenario.fault_after(i) {
                Some(Fault::Disconnect) => {
                    if let Some(f) = &follower {
                        f.disconnect_all();
                    }
                }
                Some(Fault::RotateJournal) => {
                    // A flush barrier forces every buffered batch through
                    // commit + the rotation check while the taps are live.
                    client.flush().expect("rotation flush");
                }
                Some(Fault::ColdRestart) if follower.take().is_some() => {
                    // Drop sealed the journals; the successor recovers
                    // from them (or re-snapshots when it keeps none).
                    follower = Some(
                        Follower::connect(&addr, follower_config()).expect("follower restarts"),
                    );
                }
                Some(Fault::ColdRestart) | None => {}
            }
        }
        let follower = follower.unwrap_or_else(|| {
            Follower::connect(&addr, follower_config()).expect("follower connects")
        });
        client.flush().expect("final flush");

        // The leader is quiescent now: replay its journals for the
        // per-shard target epochs and the from-scratch reference fits.
        let mut targets = Vec::with_capacity(n_shards);
        let mut references = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            let journal = JournalConfig::new(&leader_dir).shard_path(shard);
            let restored =
                StreamSession::restore(config.clone(), &journal).expect("leader journal restores");
            let ds = restored.dataset().clone();
            let fresh = Fuser::fit(&config, &ds, ds.gold().expect("shard gold"))
                .expect("fresh fit succeeds");
            let scores = fresh.score_all(&ds).expect("fresh scoring");
            targets.push(restored.epoch());
            references.push((ds, scores));
        }
        await_catchup(&follower, &targets);
        let stats = follower.stats();
        assert_eq!(stats.applied_epochs(), targets, "applied == leader epochs");

        // In-process reads: every tenant's scores and decisions must be
        // bitwise the reference fit, filtered to the tenant's namespace.
        let follower = Arc::new(follower);
        let fserver = FollowerServer::bind(
            "127.0.0.1:0",
            Arc::clone(&follower),
            FollowerServerConfig::new(),
        )
        .expect("follower server binds");
        let faddr = fserver.local_addr().expect("follower addr").to_string();
        let (fhandle, fjoin) = spawn_follower(fserver).expect("follower server spawns");
        let mut reader = Client::connect(&faddr).expect("wire reader connects");
        for (tenant, _) in &scenario.stream.seeds {
            let shard = *tenant as usize % n_shards;
            let (ds, ref_scores) = &references[shard];
            let prefix = format!("{tenant}{NAMESPACE_SEP}");
            let expected: Vec<f64> = ds
                .triples()
                .filter(|t| ds.triple(*t).subject.starts_with(&prefix))
                .map(|t| ref_scores[t.index()])
                .collect();
            let local = follower
                .scores_at(TenantId(*tenant), targets[shard])
                .expect("in-process scores");
            let wire = reader
                .scores_at(TenantId(*tenant), targets[shard])
                .expect("wire scores");
            assert_eq!(local.len(), expected.len(), "tenant {tenant} triple count");
            for (i, ((a, b), c)) in local.iter().zip(&expected).zip(&wire).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "tenant {tenant}, local triple {i}: follower {a} vs leader fit {b}"
                );
                assert_eq!(a.to_bits(), c.to_bits(), "wire read diverged");
            }
            let decisions = follower
                .decisions(TenantId(*tenant))
                .expect("in-process decisions");
            let expected_decisions: Vec<bool> = expected.iter().map(|s| *s > threshold).collect();
            assert_eq!(decisions, expected_decisions, "tenant {tenant} decisions");
        }

        // Bounded staleness: demanding an epoch beyond the leader's head
        // fails typed and retryable, in process and over the wire.
        let (first_tenant, _) = scenario.stream.seeds[0];
        let too_new = targets[first_tenant as usize % n_shards] + 1_000;
        match follower.scores_at(TenantId(first_tenant), too_new) {
            Err(ReplicaError::Serve(ServeError::Stale {
                epoch, min_epoch, ..
            })) => {
                assert_eq!(epoch, targets[first_tenant as usize % n_shards]);
                assert_eq!(min_epoch, too_new);
            }
            other => panic!("expected STALE, got {other:?}"),
        }
        match reader.scores_at(TenantId(first_tenant), too_new) {
            Err(NetError::Remote { code, .. }) => {
                assert_eq!(code, ErrorCode::Stale);
                assert!(code.is_retryable());
            }
            other => panic!("expected wire STALE, got {other:?}"),
        }

        // The follower is read-only: writes bounce with a typed error.
        let some_events = &scenario.stream.messages[0].1;
        match reader
            .ingest(TenantId(first_tenant), some_events)
            .and_then(|_| reader.flush())
        {
            Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Forbidden),
            other => panic!("expected FORBIDDEN on follower write, got {other:?}"),
        }
        drop(reader);
        drop(client);

        fhandle.stop();
        fjoin
            .join()
            .expect("follower accept thread")
            .expect("follower stops");
        follower.shutdown();
        handle.stop();
        let stats = join
            .join()
            .expect("leader accept thread")
            .expect("leader stops");
        assert_eq!(stats.aggregate().ingest_errors, 0);
        std::fs::remove_dir_all(&case_dir).ok();
    });
    std::fs::remove_dir_all(&dir).ok();
}
