//! End-to-end checks of every concrete number the paper derives from the
//! motivating example (Figure 1, Examples 2.2/2.3/3.3/4.4, §2.3).

use corrfuse::core::fuser::{Fuser, FuserConfig, Method};
use corrfuse::core::joint::{EmpiricalJoint, JointQuality, SourceSet};
use corrfuse::core::quality::QualityEstimator;
use corrfuse::core::TripleId;
use corrfuse::eval::harness::{evaluate_method, MethodSpec};
use corrfuse::synth::motivating::figure1;

fn approx(actual: f64, expected: f64, tol: f64, what: &str) {
    assert!(
        (actual - expected).abs() < tol,
        "{what}: got {actual}, want {expected}"
    );
}

#[test]
fn example_2_2_source_quality() {
    let ds = figure1();
    let q = QualityEstimator::new()
        .estimate(&ds, ds.gold().unwrap())
        .unwrap();
    approx(q[0].precision, 4.0 / 7.0, 1e-12, "p1");
    approx(q[0].recall, 4.0 / 6.0, 1e-12, "r1");
}

#[test]
fn example_2_3_joint_quality() {
    let ds = figure1();
    let joint = EmpiricalJoint::new(&ds, ds.gold().unwrap(), ds.sources().collect(), 0.5).unwrap();
    // {S1,S4,S5}: joint precision 0.6, joint recall 0.5, independent
    // product would be 0.3 -> positive correlation.
    let s145 = SourceSet::EMPTY.with(0).with(3).with(4);
    approx(joint.joint_precision(s145).unwrap(), 0.6, 1e-12, "jp145");
    approx(joint.joint_recall(s145), 0.5, 1e-12, "jr145");
    let product = joint.member_recall(0) * joint.member_recall(3) * joint.member_recall(4);
    approx(product, 0.3, 0.01, "independent product");
    // {S1,S3}: joint precision 1, joint recall 0.33 < 0.45 product.
    let s13 = SourceSet::EMPTY.with(0).with(2);
    approx(joint.joint_precision(s13).unwrap(), 1.0, 1e-12, "jp13");
    approx(joint.joint_recall(s13), 1.0 / 3.0, 1e-12, "jr13");
}

#[test]
fn figure_1c_union_rows() {
    let ds = figure1();
    for (k, p, r, f1) in [
        (25.0, 0.56, 0.83, 0.67),
        (50.0, 0.71, 0.83, 0.77),
        (75.0, 0.60, 0.50, 0.55),
    ] {
        let rep = evaluate_method(&ds, &MethodSpec::Union(k)).unwrap();
        approx(rep.prf.precision, p, 0.01, "union precision");
        approx(rep.prf.recall, r, 0.01, "union recall");
        approx(rep.prf.f1, f1, 0.01, "union f1");
    }
}

#[test]
fn example_3_3_probabilities() {
    let ds = figure1();
    let fuser = Fuser::fit(&FuserConfig::new(Method::PrecRec), &ds, ds.gold().unwrap()).unwrap();
    approx(
        fuser.score_triple(&ds, TripleId(1)).unwrap(),
        0.09,
        0.01,
        "Pr(t2)",
    );
    approx(
        fuser.score_triple(&ds, TripleId(7)).unwrap(),
        0.62,
        0.01,
        "Pr(t8) under independence",
    );
}

#[test]
fn section_2_3_overview_claims() {
    let ds = figure1();
    let precrec = evaluate_method(&ds, &MethodSpec::PrecRec).unwrap();
    approx(precrec.prf.precision, 0.75, 1e-9, "PrecRec precision");
    approx(precrec.prf.recall, 1.0, 1e-9, "PrecRec recall");
    approx(precrec.prf.f1, 0.857, 0.01, "PrecRec F1 (paper: .86)");

    let corr = evaluate_method(&ds, &MethodSpec::PrecRecCorr).unwrap();
    approx(corr.prf.precision, 1.0, 1e-9, "PrecRecCorr precision");
    approx(corr.prf.recall, 5.0 / 6.0, 1e-9, "PrecRecCorr recall");
    approx(corr.prf.f1, 0.909, 0.01, "PrecRecCorr F1 (paper: .91)");

    // "18% higher than Union-50": 0.91 / 0.77 = 1.18.
    let union50 = evaluate_method(&ds, &MethodSpec::Union(50.0)).unwrap();
    let ratio = corr.prf.f1 / union50.prf.f1;
    assert!(ratio > 1.15 && ratio < 1.22, "improvement ratio {ratio}");
}

#[test]
fn theorem_3_5_values_from_section_3() {
    // q1=0.5, q2=0.67, q3=0.167, q4=q5=0.33 at alpha 0.5.
    let ds = figure1();
    let q = QualityEstimator::new()
        .estimate(&ds, ds.gold().unwrap())
        .unwrap();
    let expected = [0.5, 0.667, 0.167, 0.333, 0.333];
    for (i, want) in expected.iter().enumerate() {
        let got = corrfuse::core::quality::derive_fpr(q[i].precision, q[i].recall, 0.5).unwrap();
        approx(got, *want, 0.001, "q_i");
    }
}

#[test]
fn all_elastic_levels_are_sane_on_figure1() {
    let ds = figure1();
    let exact = evaluate_method(&ds, &MethodSpec::PrecRecCorr).unwrap();
    for level in 0..=5 {
        let rep = evaluate_method(&ds, &MethodSpec::Elastic(level)).unwrap();
        assert!(rep.prf.f1.is_finite());
        if level >= 4 {
            approx(
                rep.prf.f1,
                exact.prf.f1,
                1e-9,
                "elastic == exact at full level",
            );
        }
    }
}
