//! The streaming subsystem's trust anchor, as a property over random
//! event streams: after every ingested micro-batch, an
//! [`corrfuse::stream::IncrementalFuser`]'s scores are **bitwise
//! identical** to a from-scratch `Fuser::fit` + `score_all` on the
//! accumulated dataset. Runs on the in-tree testkit harness (offline
//! `proptest` stand-in), so every CI machine sees the same cases.

use corrfuse::core::engine::ScoringEngine;
use corrfuse::core::fuser::{ClusterStrategy, Fuser, FuserConfig, Method};
use corrfuse::core::testkit::{run_cases, Gen};
use corrfuse::core::Dataset;
use corrfuse::stream::{replay, Event, StreamSession};
use corrfuse::synth::{StreamSpec, SynthSpec};

fn random_method(g: &mut Gen) -> Method {
    match g.usize_in(0, 4) {
        0 => Method::PrecRec,
        1 => Method::Exact,
        2 => Method::Aggressive,
        _ => Method::Elastic(g.usize_in(0, 3)),
    }
}

fn random_spec(g: &mut Gen, case_seed: u64) -> StreamSpec {
    let n_sources = g.usize_in(3, 6);
    let precision = g.f64_in(0.65, 0.9);
    let recall = g.f64_in(0.3, 0.6);
    let n_triples = g.usize_in(80, 160);
    StreamSpec {
        base: SynthSpec::uniform(n_sources, precision, recall, n_triples, 0.5, case_seed),
        seed_fraction: g.f64_in(0.3, 0.7),
        n_batches: g.usize_in(3, 6),
        label_fraction: g.f64_in(0.0, 0.8),
        add_source_every: if g.bool(0.4) {
            Some(g.usize_in(2, 4))
        } else {
            None
        },
        seed: case_seed.wrapping_mul(31),
    }
}

/// Bitwise comparison after a batch: any drift — an un-invalidated memo
/// entry, a stale score-cache pattern, a count off by one — fails here.
fn assert_batchwise_equivalence(
    session: &StreamSession,
    seed: &Dataset,
    applied: &[Event],
    batch_no: usize,
) {
    let accumulated = replay::accumulate(seed, applied).expect("accumulated dataset builds");
    let fresh = Fuser::fit(
        session.config(),
        &accumulated,
        accumulated.gold().expect("stream seeds carry gold"),
    )
    .expect("batch fit succeeds");
    let batch_scores = fresh
        .score_all(&accumulated)
        .expect("batch scoring succeeds");
    let inc = session.scores();
    assert_eq!(
        inc.len(),
        batch_scores.len(),
        "batch {batch_no}: triple count"
    );
    for (i, (a, b)) in inc.iter().zip(&batch_scores).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "batch {batch_no}, triple {i}: incremental {a} vs batch {b}"
        );
    }
}

fn run_stream(g: &mut Gen, config: FuserConfig) -> Vec<corrfuse::stream::RefitLevel> {
    let case_seed = (g.usize_in(0, usize::MAX / 2)) as u64;
    let spec = random_spec(g, case_seed);
    let (seed, batches) = corrfuse::synth::event_stream(&spec).expect("stream generation succeeds");
    // Random engine: parallel and serial scoring are bitwise equal.
    let engine = if g.bool(0.5) {
        ScoringEngine::serial()
    } else {
        ScoringEngine::with_threads(g.usize_in(2, 5))
    };
    let mut session =
        StreamSession::with_engine(config, seed.clone(), engine).expect("seed session fits");
    let mut applied: Vec<Event> = Vec::new();
    let mut refits = Vec::new();
    for (i, batch) in batches.iter().enumerate() {
        refits.push(session.ingest(batch).expect("batch ingests").refit);
        applied.extend(batch.iter().cloned());
        assert_batchwise_equivalence(&session, &seed, &applied, i);
    }
    refits
}

#[test]
fn incremental_scores_equal_batch_fit_on_random_streams() {
    run_cases("incremental_equals_batch", 12, |g| {
        let method = random_method(g);
        run_stream(g, FuserConfig::new(method));
    });
}

#[test]
fn data_driven_auto_clustering_streams_stay_equivalent() {
    // Shrinking the cluster cap below the source count makes `Auto`
    // clustering data-driven: labels move the pairwise lifts, and the
    // incremental path maintains the lift graph and reconciles the
    // partition instead of falling back to a full refit. The bitwise
    // anchor must keep holding through Model, Cluster and Full batches.
    use corrfuse::stream::RefitLevel;
    use std::cell::RefCell;
    let seen = RefCell::new(Vec::new());
    run_cases("incremental_data_driven", 8, |g| {
        let method = match g.usize_in(0, 3) {
            0 => Method::Exact,
            1 => Method::Aggressive,
            _ => Method::Elastic(2),
        };
        let mut config = FuserConfig::new(method);
        config.cluster.max_cluster_size = 2;
        config.cluster.min_support = g.usize_in(1, 3);
        seen.borrow_mut().extend(run_stream(g, config));
    });
    // The suite is only meaningful if the incremental paths actually ran:
    // model-level refreshes must occur, and full refits must no longer be
    // the answer to every label under data-driven clustering.
    let seen = seen.borrow();
    assert!(
        seen.contains(&RefitLevel::Model),
        "no model-level refresh observed under data-driven clustering: {seen:?}"
    );
    assert!(
        seen.iter().filter(|&&r| r == RefitLevel::Full).count() < seen.len(),
        "every batch fell back to a full refit: {seen:?}"
    );
}

#[test]
fn singleton_strategy_streams_stay_equivalent() {
    // The explicit-singletons strategy exercises the no-cluster path for
    // correlated methods under streaming.
    run_cases("incremental_singletons", 4, |g| {
        run_stream(
            g,
            FuserConfig::new(Method::Exact).with_strategy(ClusterStrategy::Singletons),
        );
    });
}
