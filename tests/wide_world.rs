//! Wide-world scaling: a 10⁵-source world must fit — and refit under
//! label churn — with the lift graph holding only a bounded, planted-
//! clique-sized pair set, while the derived clustering stays bitwise
//! identical to the exact (sketch-free) configuration.
//!
//! The budget math: `corrfuse_synth::wide_world` plants one
//! above-threshold clique per domain and keeps every other pair near
//! lift 1, so the sketch tier should admit roughly
//! [`WideWorldSpec::planted_pairs`] of the `domains × C(width, 2)`
//! co-scoped candidates. The assert allows 2× for sampling noise — still
//! ~7× below the co-scoped total and ~10⁵× below the all-pairs table the
//! pre-sparse graph would have allocated (`C(100_000, 2) ≈ 5·10⁹`).

use corrfuse::core::cluster::{
    cluster_from_pairs, cluster_sources, pairwise_correlations, ClusterConfig, LiftGraph,
    SketchParams,
};
use corrfuse::core::dataset::Dataset;
use corrfuse::synth::{wide_world, WideWorldSpec};

fn sketch_cfg() -> ClusterConfig {
    ClusterConfig {
        // Comfortably above the wide world's coin-flip noise floor
        // (σ ≈ 0.35) and below its planted clique strength (ln 4).
        ln_threshold: 2.5f64.ln(),
        sketch: SketchParams::on(),
        ..ClusterConfig::default()
    }
}

fn exact_cfg() -> ClusterConfig {
    ClusterConfig {
        sketch: SketchParams::default(),
        ..sketch_cfg()
    }
}

#[test]
fn hundred_thousand_sources_fit_and_refit_under_pair_budget() {
    let spec = WideWorldSpec::new(100_000);
    let mut ds: Dataset = wide_world(&spec).unwrap();
    let gold = ds.gold().unwrap().clone();
    let budget = 2 * spec.planted_pairs();

    let mut sparse = LiftGraph::build(&ds, &gold, &sketch_cfg());
    let mut exact = LiftGraph::build(&ds, &gold, &exact_cfg());

    let stats = sparse.stats();
    assert!(
        stats.pairs_exact <= budget,
        "fit: {} exact pairs over the {budget} budget",
        stats.pairs_exact
    );
    assert!(
        stats.pairs_exact >= spec.planted_pairs(),
        "fit: planted cliques missing ({} < {})",
        stats.pairs_exact,
        spec.planted_pairs()
    );
    assert!(stats.pairs_sketch_pruned > 0, "sketch never pruned");
    // The sketch-free graph tracks every co-scoped pair; the sketch tier
    // must be well under that.
    assert!(stats.pairs_exact * 5 < exact.stats().pairs_exact);
    assert_eq!(sparse.clustering(), exact.clustering(), "fit diverged");

    // Refit: flip one label per 50th domain and reconcile both graphs
    // through the incremental hooks.
    let flips: Vec<_> = (0..spec.n_domains())
        .step_by(50)
        .map(|d| {
            let t = corrfuse::core::triple::TripleId((d * spec.triples_per_domain) as u32);
            (t, gold.get(t).unwrap())
        })
        .collect();
    for &(t, old) in &flips {
        ds.set_label(t, !old).unwrap();
        sparse.relabel(&ds, t, Some(old), !old);
        exact.relabel(&ds, t, Some(old), !old);
    }
    assert!(sparse.take_changed());
    sparse.admit_candidates(&ds);
    let stats = sparse.stats();
    assert!(
        stats.pairs_exact <= budget,
        "refit: {} exact pairs over the {budget} budget",
        stats.pairs_exact
    );
    assert_eq!(sparse.clustering(), exact.clustering(), "refit diverged");
}

#[test]
fn sketch_path_matches_dense_reference_at_moderate_scale() {
    let spec = WideWorldSpec::new(300);
    let ds = wide_world(&spec).unwrap();
    let gold = ds.gold().unwrap();
    let dense = cluster_from_pairs(
        ds.n_sources(),
        pairwise_correlations(&ds, gold, &exact_cfg()).unwrap(),
        &exact_cfg(),
    );
    assert_eq!(cluster_sources(&ds, gold, &sketch_cfg()).unwrap(), dense);
    assert_eq!(cluster_sources(&ds, gold, &exact_cfg()).unwrap(), dense);
}
