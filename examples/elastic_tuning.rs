//! Trading accuracy for speed with the elastic approximation.
//!
//! The exact correlated solver is exponential in the number of
//! non-providing sources; the elastic approximation (Algorithm 1) costs
//! `O(n^lambda)` per triple and approaches the exact answer as the level
//! grows. This example sweeps the level on a REVERB-like workload and
//! prints the quality/latency frontier, then shows how to pick a level
//! programmatically from a latency budget.
//!
//! Run with: `cargo run --release --example elastic_tuning`

use std::time::Instant;

use corrfuse::core::fuser::{Fuser, FuserConfig, Method};
use corrfuse::core::subset::elastic_term_count;
use corrfuse::eval::metrics::Confusion;
use corrfuse::synth::replicas;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = replicas::reverb(99)?;
    println!("workload: {}", ds.stats());
    let gold = ds.require_gold()?.clone();

    // Exact reference.
    let t0 = Instant::now();
    let exact = Fuser::fit(&FuserConfig::new(Method::Exact), &ds, &gold)?;
    let exact_scores = exact.score_all(&ds)?;
    let exact_time = t0.elapsed().as_secs_f64();
    let exact_f1 = f1(&gold, &exact_scores);

    println!(
        "\nlevel sweep (exact F1 = {exact_f1:.3}, {:.0} ms):",
        exact_time * 1e3
    );
    println!(
        "{:<12} {:>6} {:>9} {:>12} {:>16}",
        "setting", "f1", "time(ms)", "gap-to-exact", "terms/triple(6 src)"
    );
    for level in 0..=5usize {
        let t0 = Instant::now();
        let fuser = Fuser::fit(&FuserConfig::new(Method::Elastic(level)), &ds, &gold)?;
        let scores = fuser.score_all(&ds)?;
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let level_f1 = f1(&gold, &scores);
        // Max deviation of any probability from the exact solution.
        let gap = scores
            .iter()
            .zip(&exact_scores)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{:<12} {:>6.3} {:>9.1} {:>12.4} {:>16}",
            format!("level-{level}"),
            level_f1,
            ms,
            gap,
            // Worst-case correction terms for a triple with an empty
            // provider set in a 6-source cluster.
            elastic_term_count(6, level)
        );
    }

    // Programmatic selection: smallest level whose worst-case term count
    // fits a budget (here: 50 correction terms per triple).
    let budget = 50usize;
    let n = ds.n_sources();
    let chosen = (0..=n)
        .find(|&l| elastic_term_count(n, l + 1) > budget)
        .unwrap_or(n);
    println!(
        "\nwith a budget of {budget} correction terms/triple on {n} sources, \
         pick level {chosen}"
    );
    let fuser = Fuser::fit(&FuserConfig::new(Method::Elastic(chosen)), &ds, &gold)?;
    let scores = fuser.score_all(&ds)?;
    println!("level-{chosen} F1 = {:.3}", f1(&gold, &scores));

    Ok(())
}

fn f1(gold: &corrfuse::core::GoldLabels, scores: &[f64]) -> f64 {
    let decisions: Vec<bool> = scores.iter().map(|&p| p > 0.5).collect();
    Confusion::from_decisions(gold, &decisions).f1()
}
