//! Observability walkthrough: run a metrics-enabled server, stream a
//! workload through a loopback client, fetch the self-describing
//! `METRICS` snapshot, and print it as Prometheus-style text.
//!
//! ```sh
//! cargo run --release --example metrics_dump            # default port 7272
//! cargo run --release --example metrics_dump -- 0      # ephemeral port
//! ```
//!
//! One registry is shared by the shard workers (per-stage latency
//! histograms, batch traces) and the connection handlers (per-frame-type
//! wire histograms); the same snapshot the server would export locally
//! travels over the `METRICS` frame, so the readout below is exactly
//! what a remote operator sees. `docs/OBSERVABILITY.md` catalogs every
//! series printed here.

use std::sync::Arc;

use corrfuse::core::fuser::{FuserConfig, Method};
use corrfuse::net::{Client, Server, ServerConfig, WireMetric, WireMetricValue};
use corrfuse::obs::{export::render_text, Registry};
use corrfuse::serve::{RouterConfig, ShardRouter, TenantId};
use corrfuse::synth::{multi_tenant_events, MultiTenantSpec};

fn main() {
    let port: u16 = std::env::args()
        .nth(1)
        .map(|p| p.parse().expect("port must be a number"))
        .unwrap_or(7272);

    // Shared registry: router workers and server handlers record into
    // the same table, so one METRICS fetch sees the whole pipeline.
    let registry = Arc::new(Registry::new());

    let spec = MultiTenantSpec::new(3, 150, 2026);
    let stream = multi_tenant_events(&spec).expect("workload generates");
    let router = ShardRouter::new(
        FuserConfig::new(Method::Exact),
        RouterConfig::new(2).with_metrics(Arc::clone(&registry)),
        stream
            .seeds
            .iter()
            .map(|(t, ds)| (TenantId(*t), ds.clone()))
            .collect(),
    )
    .expect("router constructs");

    let server = Server::bind(
        ("127.0.0.1", port),
        router,
        ServerConfig::new()
            .with_max_connections(4)
            .with_metrics(Arc::clone(&registry)),
    )
    .expect("server binds");
    let addr = server.local_addr().expect("bound address");
    println!("metrics_dump: server on {addr}, streaming workload…");
    let (handle, join) = corrfuse::net::server::spawn(server).expect("server spawns");

    // Stream the multi-tenant workload through the wire, then barrier so
    // every stage histogram has recorded before the snapshot.
    let mut client = Client::connect(addr.to_string()).expect("client connects");
    for (tenant, events) in &stream.messages {
        client
            .ingest(TenantId(*tenant), events)
            .expect("batch accepted");
    }
    client.flush().expect("read-your-writes barrier");

    let metrics = client.metrics().expect("METRICS reply");
    assert!(!metrics.is_empty(), "exposition must not be empty");

    // Render the remote snapshot exactly like a local registry dump.
    println!(
        "\n== Prometheus-style exposition ({} series) ==",
        metrics.len()
    );
    print!("{}", render_text(&WireMetric::to_samples(&metrics)));

    // Quantile readout of the stage histograms, via the wire shape.
    println!("== stage latency quantiles ==");
    for m in &metrics {
        if let WireMetricValue::Histogram(h) = &m.value {
            if h.count == 0 {
                continue;
            }
            let snap = h.to_snapshot();
            println!(
                "{}: n={} p50={}ns p90={}ns p99={}ns max={}ns",
                m.name,
                h.count,
                snap.p50(),
                snap.p90(),
                snap.p99(),
                snap.max,
            );
        }
    }

    // The server-side trace ring kept the last batches' stage
    // breakdowns; dump them as JSON lines (newest last).
    let traces = registry.traces().dump_json_lines();
    println!(
        "\n== last {} batch traces (JSON lines) ==",
        registry.traces().len()
    );
    print!("{traces}");

    handle.stop();
    join.join().expect("server thread").expect("clean stop");
    println!("\nmetrics_dump: done");
}
