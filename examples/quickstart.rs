//! Quickstart: fuse the paper's motivating example.
//!
//! Builds the Figure 1 dataset (five extraction systems reading the
//! Wikipedia page for Barack Obama), fits PrecRec and PrecRecCorr, and
//! shows how modelling correlations flips the verdict on the shared
//! mistake `t8 = {Obama, administered by, John G. Roberts}`.
//!
//! Run with: `cargo run --example quickstart`

use corrfuse::core::fuser::{Fuser, FuserConfig, Method};
use corrfuse::synth::motivating;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = motivating::figure1();
    println!("dataset: {}", ds.stats());
    let gold = ds.require_gold()?;

    // Fit both models with the paper's prior (alpha = 0.5).
    let precrec = Fuser::fit(&FuserConfig::new(Method::PrecRec), &ds, gold)?;
    let corr = Fuser::fit(&FuserConfig::new(Method::Exact), &ds, gold)?;

    println!("\nestimated source quality:");
    for (i, q) in precrec.qualities().iter().enumerate() {
        println!(
            "  S{}: precision {:.2}, recall {:.2}{}",
            i + 1,
            q.precision,
            q.recall,
            if q.is_good(0.5) {
                ""
            } else {
                "  (bad source: p <= alpha)"
            }
        );
    }

    println!("\ntriple-by-triple probabilities:");
    println!(
        "{:<44} {:>5}  {:>8}  {:>12}",
        "triple", "gold", "PrecRec", "PrecRecCorr"
    );
    for t in ds.triples() {
        let triple = ds.triple(t);
        let g = gold.get(t).unwrap();
        let p1 = precrec.score_triple(&ds, t)?;
        let p2 = corr.score_triple(&ds, t)?;
        println!(
            "{:<44} {:>5}  {:>8.3}  {:>12.3}",
            triple.to_string(),
            if g { "yes" } else { "no" },
            p1,
            p2
        );
    }

    // The headline: t8 is provided by four of five sources, but three of
    // them share extraction rules (S1, S4, S5 are positively correlated on
    // false triples). Independence accepts it; correlations reject it.
    let t8 = corrfuse::core::TripleId(7);
    let p_indep = precrec.score_triple(&ds, t8)?;
    let p_corr = corr.score_triple(&ds, t8)?;
    println!("\nt8 {}:", ds.triple(t8));
    println!("  PrecRec     says {:.2} -> accepted (wrong!)", p_indep);
    println!("  PrecRecCorr says {:.2} -> rejected (right)", p_corr);
    assert!(p_indep > 0.5 && p_corr < 0.5);

    Ok(())
}
