//! Cleaning aggregated restaurant listings.
//!
//! Seven listing services report restaurant locations; some copy from each
//! other, some cover complementary neighbourhoods. We hold out part of the
//! gold standard as a *training* set (the paper derives all parameters
//! from labelled data), fit on it, then score the held-out triples —
//! demonstrating that corrfuse does not need test labels.
//!
//! Run with: `cargo run --release --example restaurant_listings`

use std::collections::HashSet;

use corrfuse::core::fuser::{Fuser, FuserConfig, Method};
use corrfuse::core::TripleId;
use corrfuse::synth::{GroupKind, GroupSpec, Polarity, SourceSpec, SynthSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A larger listings corpus than the paper's 93-triple gold standard:
    // the correlated models estimate joint parameters for source subsets,
    // which needs enough labelled support (the paper hits the same issue
    // on BOOK and solves it by clustering).
    let spec = SynthSpec {
        n_triples: 3000,
        true_fraction: 0.55,
        sources: vec![
            SourceSpec::named("Yelp", 0.93, 0.80),
            SourceSpec::named("Foursquare", 0.91, 0.75),
            SourceSpec::named("OpenTable", 0.94, 0.70),
            SourceSpec::named("MechanicalTurk", 0.80, 0.55),
            SourceSpec::named("YellowPages", 0.85, 0.65),
            SourceSpec::named("CitySearch", 0.87, 0.60),
            SourceSpec::named("MenuPages", 0.95, 0.55),
        ],
        groups: vec![
            // Four aggregators sharing a feed: correlated on both sides.
            GroupSpec {
                members: vec![0, 1, 2, 3],
                polarity: Polarity::TrueTriples,
                kind: GroupKind::Positive { strength: 0.7 },
            },
            GroupSpec {
                members: vec![0, 1, 2, 3],
                polarity: Polarity::FalseTriples,
                kind: GroupKind::Positive { strength: 0.7 },
            },
            // Two services covering complementary neighbourhoods.
            GroupSpec {
                members: vec![4, 5],
                polarity: Polarity::TrueTriples,
                kind: GroupKind::Complementary { strength: 0.8 },
            },
        ],
        seed: 2024,
    };
    let ds = corrfuse::synth::generate(&spec)?;
    println!("aggregated listings: {}", ds.stats());
    let gold = ds.require_gold()?;

    // Split labelled triples: even ids train, odd ids test.
    let train_ids: HashSet<TripleId> = gold
        .iter_labelled()
        .filter(|(t, _)| t.index() % 2 == 0)
        .map(|(t, _)| t)
        .collect();
    let training = gold.restricted_to(&train_ids);
    println!(
        "training on {} labelled triples, evaluating on {}",
        training.labelled_count(),
        gold.labelled_count() - training.labelled_count()
    );

    // Fit each model on the training half only.
    let indep = Fuser::fit(&FuserConfig::new(Method::PrecRec), &ds, &training)?;
    let corr = Fuser::fit(&FuserConfig::new(Method::Exact), &ds, &training)?;

    println!("\nper-service quality (estimated from training split):");
    for s in ds.sources() {
        let q = indep.qualities()[s.index()];
        println!(
            "  {:<15} precision {:.2}  recall {:.2}",
            ds.source_name(s),
            q.precision,
            q.recall
        );
    }

    // Evaluate on the held-out half.
    let mut table = vec![("PrecRec", &indep), ("PrecRecCorr", &corr)];
    table.reverse(); // print corr last for emphasis
    for (name, fuser) in table.into_iter().rev() {
        let (mut tp, mut fp, mut fn_) = (0.0, 0.0, 0.0);
        for (t, truth) in gold.iter_labelled() {
            if train_ids.contains(&t) {
                continue;
            }
            let accepted = fuser.score_triple(&ds, t)? > 0.5;
            match (accepted, truth) {
                (true, true) => tp += 1.0,
                (true, false) => fp += 1.0,
                (false, true) => fn_ += 1.0,
                _ => {}
            }
        }
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
        println!(
            "\n{name} on held-out triples: precision {:.3}, recall {:.3}, f1 {:.3}",
            precision,
            recall,
            corrfuse::core::prob::f1_score(precision, recall)
        );
    }

    // Show the discovered grouping the correlated model used.
    println!("\ncorrelation clusters used by PrecRecCorr:");
    for members in corr.clustering().non_trivial() {
        let names: Vec<&str> = members.iter().map(|&s| ds.source_name(s)).collect();
        println!("  {}", names.join(" + "));
    }
    if corr.clustering().non_trivial().next().is_none() {
        println!("  (all sources in one joint cluster — few enough to solve exactly)");
    }

    Ok(())
}
