//! Network front-door walkthrough, client side: connect to the
//! `net_server` example, stream every tenant's events over TCP —
//! dropping the connection mid-stream to show resend-on-reconnect —
//! then read scores back and shut the server down.
//!
//! Start `net_server` first; see its header for the two-command run.

use corrfuse::net::Client;
use corrfuse::serve::TenantId;
use corrfuse::synth::{remote_producer_scripts, MultiTenantSpec, ProducerAction, RemoteSpec};

/// Must match `net_server`'s workload seed.
pub const WORKLOAD_SEED: u64 = 2026;

fn main() {
    let port: u16 = std::env::args()
        .nth(1)
        .map(|p| p.parse().expect("port must be a number"))
        .unwrap_or(7171);
    let addr = format!("127.0.0.1:{port}");

    // The same three-tenant world the server seeded, sliced into one
    // producer script with a forced reconnect every 4 sends.
    let spec = RemoteSpec {
        tenants: MultiTenantSpec::new(3, 200, WORKLOAD_SEED),
        n_producers: 1,
        reconnect_every: Some(4),
    };
    let workload = remote_producer_scripts(&spec).expect("workload generates");
    let script = &workload.scripts[0];
    println!(
        "streaming {} events in {} batches to {addr} ({} forced reconnects)",
        workload.n_events(),
        script.n_sends(),
        script.n_reconnects(),
    );

    let mut client = Client::connect(&addr).expect("connect (is net_server running?)");
    client.ping().expect("server alive");
    for action in &script.actions {
        match action {
            ProducerAction::Send { tenant, events } => {
                client
                    .ingest(TenantId(*tenant), events)
                    .expect("pipelined ingest");
            }
            ProducerAction::Reconnect => {
                // Yank the TCP connection with acks still in flight; the
                // next send transparently reconnects and resends.
                client.disconnect();
            }
        }
    }
    client.flush().expect("read-your-writes barrier");
    println!(
        "delivered: {} batches acked, {} reconnects performed",
        client.acked_batches(),
        client.reconnects(),
    );

    println!("\n== tenant queries over the wire ==");
    for (tenant, _) in &workload.seeds {
        let scores = client.scores(TenantId(*tenant)).expect("scores");
        let decisions = client.decisions(TenantId(*tenant)).expect("decisions");
        let accepted = decisions.iter().filter(|&&d| d).count();
        println!(
            "tenant {tenant}: {} triples, {accepted} accepted, mean posterior {:.3}",
            scores.len(),
            scores.iter().sum::<f64>() / scores.len().max(1) as f64,
        );
    }

    let stats = client.stats().expect("stats");
    println!(
        "\nconnection: {} frames, {} batches, {} events; {} shards server-side",
        stats.conn_frames,
        stats.conn_batches,
        stats.conn_events,
        stats.shards.len(),
    );
    for s in &stats.shards {
        println!(
            "  shard {}: {} tenants, {} events ingested, {} errors, poisoned: {}",
            s.shard, s.tenants, s.ingested_events, s.ingest_errors, s.poisoned,
        );
    }

    client.shutdown_server().expect("remote shutdown");
    println!("\nserver asked to shut down — run done");
}
