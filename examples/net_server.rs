//! Network front-door walkthrough, server side: seed a three-tenant
//! `ShardRouter`, put the `corrfuse-net` TCP server in front of it, and
//! serve until a client sends SHUTDOWN.
//!
//! Run the pair (in two terminals, or backgrounding the server):
//!
//! ```sh
//! cargo run --release --example net_server -- 7171 &
//! cargo run --release --example net_client -- 7171
//! ```
//!
//! The port argument is optional (default 7171; pass 0 for an
//! ephemeral port, printed on startup). The server enables remote
//! shutdown so the client example can end the run; production
//! deployments leave that off and stop via `ServerHandle::stop`.

use corrfuse::core::fuser::{FuserConfig, Method};
use corrfuse::net::{Server, ServerConfig};
use corrfuse::serve::{RouterConfig, ShardRouter, TenantId};
use corrfuse::synth::{multi_tenant_events, MultiTenantSpec};

/// The workload both halves of the example pair agree on: the client
/// streams events for exactly the tenants seeded here.
pub const WORKLOAD_SEED: u64 = 2026;

fn main() {
    let port: u16 = std::env::args()
        .nth(1)
        .map(|p| p.parse().expect("port must be a number"))
        .unwrap_or(7171);

    // Three tenants, two shards — the same world the client generates.
    let spec = MultiTenantSpec::new(3, 200, WORKLOAD_SEED);
    let stream = multi_tenant_events(&spec).expect("workload generates");
    let router = ShardRouter::new(
        FuserConfig::new(Method::Exact),
        RouterConfig::new(2),
        stream
            .seeds
            .iter()
            .map(|(t, ds)| (TenantId(*t), ds.clone()))
            .collect(),
    )
    .expect("router constructs");

    let server = Server::bind(
        ("127.0.0.1", port),
        router,
        ServerConfig::new()
            .with_max_connections(16)
            .with_accept_shutdown(true),
    )
    .expect("server binds");
    let addr = server.local_addr().expect("bound address");
    println!("corrfuse-net server listening on {addr}");
    println!("  2 shards, 3 seeded tenants; send SHUTDOWN (net_client does) to stop");

    // Blocking serve; returns after a remote SHUTDOWN with the final
    // router stats (queues drained, journals sealed).
    let stats = server.serve().expect("serve loop");
    println!("\n== final per-shard stats ==");
    for s in &stats.shards {
        println!(
            "shard {}: {} tenants, {} msgs -> {} batches, {} events, {} rescored, {} flips",
            s.shard,
            s.tenants,
            s.processed_messages,
            s.batches,
            s.ingested_events,
            s.rescored,
            s.flips,
        );
    }
    let agg = stats.aggregate();
    println!(
        "aggregate: {} events, {} ingest errors — server stopped cleanly",
        agg.ingested_events, agg.ingest_errors,
    );
}
