//! Live tenant migration walkthrough: move a tenant between shards
//! with no ingest downtime, watch the migration ledger, survive a
//! chaos-aborted attempt, and let the queue-depth-driven rebalancer
//! plan the next moves.
//!
//! Run with: `cargo run --example tenant_migration`

use std::time::Duration;

use corrfuse::core::fuser::{FuserConfig, Method};
use corrfuse::serve::{
    load_routes, JournalConfig, MigrationStage, RebalancePolicy, RouterConfig, ShardRouter,
    TenantId,
};
use corrfuse::synth::{multi_tenant_events, MultiTenantSpec};

fn main() {
    // Three tenants over two shards; tenant 0 (the largest under the
    // default skew) is the one we'll move.
    let stream = multi_tenant_events(&MultiTenantSpec::new(3, 200, 7)).expect("workload");
    let dir = std::env::temp_dir().join("corrfuse-migration-example");
    std::fs::remove_dir_all(&dir).ok();
    let config = FuserConfig::new(Method::PrecRec).with_alpha(0.5);
    let router = ShardRouter::new(
        config,
        RouterConfig::new(2)
            .with_batching(32, Duration::from_millis(1))
            .with_journal(JournalConfig::new(&dir).with_rotate_max_batches(8)),
        stream
            .seeds
            .iter()
            .map(|(t, ds)| (TenantId(*t), ds.clone()))
            .collect(),
    )
    .expect("router constructs");

    let hot = TenantId(0);
    let half = stream.messages.len() / 2;
    for (tenant, events) in &stream.messages[..half] {
        router
            .ingest(TenantId(*tenant), events.clone())
            .expect("ingest");
    }
    let before = router.scores(hot).expect("tenant served");
    println!(
        "tenant {hot}: {} triples on shard {}",
        before.len(),
        router.shard_of(hot)
    );

    // A chaos-aborted attempt first: the crash hook kills the migration
    // right before commit. The rollback is total — the tenant never
    // leaves its source shard, and no route is persisted for a restart
    // to trip over.
    let target = (router.shard_of(hot) + 1) % 2;
    let err = router
        .migrate_tenant_chaos(hot, target, MigrationStage::CutOver)
        .expect_err("chaos abort");
    println!("\nchaos attempt: {err}");
    println!(
        "after rollback: still on shard {}, persisted routes: {:?}",
        router.shard_of(hot),
        load_routes(&dir).expect("routes readable"),
    );

    // The real move. The source keeps serving during the bulk replay;
    // ingest arriving inside the cut-over window is buffered and
    // re-applied on the target before the route flips at the epoch
    // fence, so reads never go backwards.
    let report = router.migrate_tenant(hot, target).expect("migration");
    println!(
        "\nmigrated {hot}: shard {} -> {} at epoch fence {}, \
         {} bulk + {} delta events, {} messages buffered in the window",
        report.from,
        report.to,
        report.fence,
        report.bulk_events,
        report.delta_events,
        report.buffered_messages,
    );
    println!(
        "persisted route: {:?}",
        load_routes(&dir).expect("routes readable")
    );

    // No downtime: the second half of the workload flows straight
    // through, now routed to the new home.
    for (tenant, events) in &stream.messages[half..] {
        router
            .ingest(TenantId(*tenant), events.clone())
            .expect("ingest");
    }
    router.flush().expect("drained");
    let after = router.scores(hot).expect("tenant served");
    println!(
        "tenant {hot}: {} triples now on shard {}",
        after.len(),
        router.shard_of(hot)
    );

    // The migration ledger, per shard and in aggregate.
    let stats = router.stats();
    let agg = stats.aggregate();
    println!("\n== migration ledger ==");
    for m in &agg.migrations {
        println!(
            "shard {}: {} in, {} out, {} failed",
            m.shard, m.migrations_in, m.migrations_out, m.migrations_failed
        );
    }
    println!(
        "totals: {} in, {} out, {} failed",
        agg.migrations_in, agg.migrations_out, agg.migrations_failed
    );

    // The rebalancer reads the same stats: thread autosizing for hot
    // shards, and a migrate-when-hot plan once the imbalance is real.
    let policy = RebalancePolicy::new()
        .with_hot_high_water(4)
        .with_max_shard_threads(4)
        .with_migrate_min_imbalance(8);
    let actions = router.rebalance(&policy).expect("rebalance pass");
    println!("\nrebalancer actions: {actions:?}");

    router.shutdown().expect("graceful shutdown");
    std::fs::remove_dir_all(&dir).ok();
}
