//! Serving-layer walkthrough: route three tenants across two shards
//! with an async front door, journaling with rotation, live stats, and
//! a crash-recovery finale.
//!
//! Run with: `cargo run --example serve_router`

use std::time::Duration;

use corrfuse::core::fuser::{FuserConfig, Method};
use corrfuse::serve::{JournalConfig, RouterConfig, ShardRouter, TenantId};
use corrfuse::stream::{FsyncPolicy, LogRetention, StreamSession};
use corrfuse::synth::{multi_tenant_events, MultiTenantSpec};

fn main() {
    // A skewed three-tenant world: tenant 0 is heavy, 1 and 2 are light.
    // Each tenant's stream is self-contained, with tenant-local ids —
    // exactly what an ingestion API would receive from separate users.
    let spec = MultiTenantSpec::new(3, 240, 2024);
    let stream = multi_tenant_events(&spec).expect("workload generates");
    println!(
        "workload    : {} tenants, {} interleaved messages, {} events",
        stream.seeds.len(),
        stream.messages.len(),
        stream.n_events()
    );

    let dir = std::env::temp_dir().join("corrfuse-serve-example");
    std::fs::remove_dir_all(&dir).ok();

    // Two shards: tenants 0 and 2 share shard 0, tenant 1 gets shard 1.
    // Journals rotate (compact to a fresh snapshot) every 4 batches, and
    // the in-memory delta log keeps only the last 2 batches — the
    // journal is the durable history.
    let config = FuserConfig::new(Method::Exact);
    let router = ShardRouter::new(
        config.clone(),
        RouterConfig::new(2)
            .with_batching(64, Duration::from_millis(1))
            .with_journal(
                JournalConfig::new(&dir)
                    .with_fsync(FsyncPolicy::EveryBatch)
                    .with_rotate_max_batches(4),
            )
            .with_retention(LogRetention::LastBatches(2)),
        stream
            .seeds
            .iter()
            .map(|(t, ds)| (TenantId(*t), ds.clone()))
            .collect(),
    )
    .expect("router constructs");
    for (tenant, seed) in &stream.seeds {
        println!(
            "  tenant {tenant}: {} seed triples -> shard {}",
            seed.n_triples(),
            router.shard_of(TenantId(*tenant))
        );
    }

    // The front door: enqueue and return. Producers never wait for a
    // refit; the shard workers batch, translate and ingest behind it.
    for (tenant, events) in &stream.messages {
        router
            .ingest(TenantId(*tenant), events.clone())
            .expect("message accepted");
    }
    router.flush().expect("drained"); // read-your-writes barrier

    println!("\n== per-shard stats ==");
    let stats = router.stats();
    for s in &stats.shards {
        println!(
            "shard {}: {} tenants, {} msgs -> {} batches (mean {:.1} ev/batch), \
             {} rescored, {} flips, {} rotations, journal {} B, \
             score-cache {:.0}% hits, max queue depth {}",
            s.shard,
            s.tenants,
            s.processed_messages,
            s.batches,
            s.mean_batch_events(),
            s.rescored,
            s.flips,
            s.rotations,
            s.journal_bytes.unwrap_or(0),
            100.0 * s.score_cache.hit_rate(),
            s.max_queue_depth,
        );
    }
    let agg = stats.aggregate();
    println!(
        "aggregate: {} events in {} batches, mean ingest {:.1} µs/batch, {} log events trimmed",
        agg.ingested_events,
        agg.batches,
        agg.mean_ingest_ns() / 1_000.0,
        agg.log_dropped_events,
    );

    // Per-tenant reads come back in tenant-local id order.
    println!("\n== tenant queries ==");
    for (tenant, _) in &stream.seeds {
        let decisions = router.decisions(TenantId(*tenant)).expect("tenant known");
        let accepted = decisions.iter().filter(|&&d| d).count();
        println!(
            "tenant {tenant}: {} triples, {accepted} accepted at threshold {}",
            decisions.len(),
            router.config().threshold,
        );
    }

    // Graceful shutdown: drain queues, seal journals, join workers.
    let shard0_journal = dir.join("shard-0.journal");
    router.shutdown().expect("graceful shutdown");

    // The sealed, rotated journal restores the shard bit-for-bit; the
    // crash-tolerant path also survives a torn tail (here: none).
    let (restored, report) = StreamSession::recover(config, &shard0_journal, FsyncPolicy::Never)
        .expect("journal recovers");
    println!(
        "\nrestored shard 0 from its journal: {} triples, {} batches replayed, torn tail: {}",
        restored.dataset().n_triples(),
        report.batches_replayed,
        report.torn,
    );
    std::fs::remove_dir_all(&dir).ok();
}
