//! End-to-end streaming demo: seed a session with the paper's Figure 1
//! dataset, ingest three delta batches, and show which triples flipped
//! decision and why.
//!
//! Run with: `cargo run --example streaming_ingest`

use corrfuse::core::fuser::{FuserConfig, Method};
use corrfuse::core::{SourceId, TripleId};
use corrfuse::stream::{Event, RefitLevel, ScoredDelta, StreamSession};

fn describe(session: &StreamSession, tag: &str, delta: &ScoredDelta) {
    println!("\n== batch {tag} ==");
    let refit = match delta.refit {
        RefitLevel::None => "none (claims on unlabelled triples only)",
        RefitLevel::Model => "model (quality counts / joint rows refreshed from counters)",
        RefitLevel::Cluster => "cluster (lift graph re-partitioned; changed clusters refitted)",
        RefitLevel::Full => "full (source set changed: fresh fit)",
    };
    println!("refit level : {refit}");
    println!(
        "re-scored   : {} triple(s), score cache {} hit(s) / {} miss(es)",
        delta.rescored.len(),
        delta.cache.hits,
        delta.cache.misses
    );
    for st in &delta.rescored {
        if st.before.is_none() {
            let verdict = if st.after > session.threshold() {
                "accepted"
            } else {
                "rejected"
            };
            println!(
                "  new  {}  Pr = {:.3}  -> {verdict}",
                name(session, st.triple),
                st.after
            );
        }
    }
    if delta.flips.is_empty() {
        println!("flips       : none");
    } else {
        for st in &delta.flips {
            let dir = if st.after > session.threshold() {
                "REJECTED -> ACCEPTED"
            } else {
                "ACCEPTED -> REJECTED"
            };
            println!(
                "  flip {}  {:.3} -> {:.3}  {dir}",
                name(session, st.triple),
                st.before.unwrap(),
                st.after
            );
        }
    }
}

fn name(session: &StreamSession, t: TripleId) -> String {
    let triple = session.dataset().triple(t);
    format!("t{:<2} ({} = {})", t.0 + 1, triple.predicate, triple.object)
}

fn main() {
    // Seed: Figure 1 — five extractors, ten labelled triples about Obama.
    let seed = corrfuse::synth::motivating::figure1();
    let mut session = StreamSession::new(FuserConfig::new(Method::Exact), seed)
        .expect("figure 1 seeds a correlated session");
    println!("seed        : {}", session.dataset().stats());
    println!(
        "decisions   : {}",
        session
            .decisions()
            .iter()
            .map(|&d| if d { 'T' } else { 'F' })
            .collect::<String>()
    );

    // Batch 1 — fast path. Two new unlabelled triples stream in. t11 is
    // claimed by the correlated trio {S1,S4,S5}; t12 only by S2 (the
    // weakest source). Nothing about the model changes: exactly these two
    // triples are scored, everything else is untouched.
    let delta = session
        .ingest(&[
            Event::add_triple("Obama", "born in", "Hawaii"),
            Event::claim(SourceId(0), TripleId(10)),
            Event::claim(SourceId(3), TripleId(10)),
            Event::claim(SourceId(4), TripleId(10)),
            Event::add_triple("Obama", "born in", "Kenya"),
            Event::claim(SourceId(1), TripleId(11)),
        ])
        .expect("batch 1 ingests");
    describe(&session, "1: new claims (fast path)", &delta);

    // Batch 2 — curators label the new triples, and two more *true*
    // triples carried by the full {S1,S2,S4,S5} coalition stream in with
    // labels. That coalition's joint pattern was dominated by false
    // triples in the seed (t8/t9), which is why the exact solver rejected
    // t1. The new evidence rehabilitates the whole pattern: t1, t8 and t9
    // share the identical observation fingerprint, so all three flip
    // together — fusion can only tell patterns apart, and the delta
    // report shows exactly that. Labels shift per-source counts and
    // append joint rows, so the quality model is refreshed from
    // maintained counters and everything re-scores through the pattern
    // cache.
    let mut batch = vec![
        Event::label(TripleId(10), true),
        Event::label(TripleId(11), false),
    ];
    for (k, fact) in ["elected 2008", "senator Illinois"].iter().enumerate() {
        let t = TripleId(12 + k as u32);
        batch.push(Event::add_triple("Obama", "fact", *fact));
        for s in [0u32, 1, 3, 4] {
            batch.push(Event::claim(SourceId(s), t));
        }
        batch.push(Event::label(t, true));
    }
    let delta = session.ingest(&batch).expect("batch 2 ingests");
    describe(&session, "2: gold labels arrive (model refresh)", &delta);

    // Batch 3 — a brand-new extractor comes online and disputes t2
    // ("died 1982", a known-false triple S1+S2 share). A new source
    // changes model dimensionality, so the session falls back to one full
    // fit, after which the extractor participates incrementally.
    let delta = session
        .ingest(&[
            Event::add_source("S6-fresh-crawl"),
            Event::add_triple("Obama", "party", "Democratic"),
            Event::claim(SourceId(5), TripleId(14)),
            Event::claim(SourceId(5), TripleId(1)),
            Event::label(TripleId(14), true),
        ])
        .expect("batch 3 ingests");
    describe(&session, "3: new source joins (full refit)", &delta);

    println!(
        "\nfinal       : {} | score-cache hit rate {:.0}%, joint-memo hit rate {:.0}%",
        session.dataset().stats(),
        100.0 * session.score_cache_stats().hit_rate(),
        100.0 * session.joint_cache_stats().hit_rate(),
    );
}
