//! Reactor front-door walkthrough: run the same workload through both
//! server back ends — thread-per-connection and the readiness reactor
//! (`ServerConfig::reactor(true)`) — on loopback, hold a fleet of idle
//! connections on the reactor's single thread, and show the scores
//! coming back bitwise identical.
//!
//! ```sh
//! cargo run --release --example net_reactor            # 500 idle conns
//! cargo run --release --example net_reactor -- 2000    # bigger fleet
//! ```
//!
//! The idle fleet demonstrates the reactor's reason to exist: each idle
//! producer costs one registered file descriptor, not one parked
//! thread. The `net_reactor_*` metrics printed at the end are the
//! observability rows documented in `docs/OBSERVABILITY.md`.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;

use corrfuse::core::fuser::{FuserConfig, Method};
use corrfuse::net::{raise_nofile_limit, Client, Frame, Request, Response, Server, ServerConfig};
use corrfuse::obs::Registry;
use corrfuse::serve::{RouterConfig, ShardRouter, TenantId};
use corrfuse::synth::{remote_producer_scripts, MultiTenantSpec, ProducerAction, RemoteSpec};

fn main() {
    let want_idle: usize = std::env::args()
        .nth(1)
        .map(|n| n.parse().expect("idle count must be a number"))
        .unwrap_or(500);
    let effective = raise_nofile_limit((want_idle * 2 + 256) as u64);
    let n_idle = want_idle.min((effective.saturating_sub(256) / 2) as usize);

    let spec = RemoteSpec {
        tenants: MultiTenantSpec::new(3, 200, 2026),
        n_producers: 4,
        reconnect_every: None,
    };
    let workload = remote_producer_scripts(&spec).expect("workload generates");
    println!(
        "workload: 3 tenants, 4 producers, {} events",
        workload.n_events()
    );

    let mut results: Vec<Vec<(u32, Vec<f64>)>> = Vec::new();
    for reactor in [false, true] {
        let registry = Arc::new(Registry::new());
        let router = ShardRouter::new(
            FuserConfig::new(Method::Exact),
            RouterConfig::new(2),
            workload
                .seeds
                .iter()
                .map(|(t, ds)| (TenantId(*t), ds.clone()))
                .collect(),
        )
        .expect("router constructs");
        let server = Server::bind(
            "127.0.0.1:0",
            router,
            ServerConfig::new()
                .reactor(reactor)
                .with_max_connections(n_idle + 32)
                .with_metrics(Arc::clone(&registry)),
        )
        .expect("server binds");
        let addr = server.local_addr().expect("bound address");
        let (handle, join) = corrfuse::net::server::spawn(server).expect("server spawns");
        let mode = if reactor {
            "reactor (1 thread, fds)"
        } else {
            "thread-per-connection"
        };
        println!("\n[{mode}] listening on {addr}");

        // Idle fleet (reactor only): handshake, then just sit there.
        let mut idle = Vec::new();
        if reactor {
            for _ in 0..n_idle {
                let mut s = TcpStream::connect(addr).expect("idle connect");
                Request::Hello {
                    min_version: 1,
                    max_version: 1,
                    credential: None,
                }
                .to_frame()
                .write_to(&mut s)
                .expect("hello");
                s.flush().expect("hello flush");
                let frame = Frame::read_from(&mut s).expect("hello response").unwrap();
                assert!(matches!(
                    Response::from_frame(&frame),
                    Ok(Response::HelloOk { .. })
                ));
                idle.push(s);
            }
            println!("[{mode}] holding {n_idle} idle connections");
        }

        std::thread::scope(|scope| {
            for script in &workload.scripts {
                scope.spawn(move || {
                    let mut client = Client::connect(addr.to_string()).expect("producer connects");
                    for action in &script.actions {
                        match action {
                            ProducerAction::Send { tenant, events } => {
                                client.ingest(TenantId(*tenant), events).expect("ingest");
                            }
                            ProducerAction::Reconnect => client.disconnect(),
                        }
                    }
                    client.flush().expect("producer flush");
                });
            }
        });

        let mut reader = Client::connect(addr.to_string()).expect("reader connects");
        reader.flush().expect("barrier");
        let scores: Vec<(u32, Vec<f64>)> = workload
            .seeds
            .iter()
            .map(|(t, _)| (*t, reader.scores(TenantId(*t)).expect("scores")))
            .collect();
        for (t, s) in &scores {
            println!("[{mode}] tenant {t}: {} scores", s.len());
        }
        drop(reader);
        drop(idle);

        handle.stop();
        let stats = join.join().expect("serve thread").expect("graceful stop");
        println!(
            "[{mode}] done: {} events ingested, {} errors",
            stats.aggregate().ingested_events,
            stats.aggregate().ingest_errors
        );
        if reactor {
            for sample in registry.snapshot() {
                if sample.name.starts_with("net_reactor_") {
                    println!("[{mode}] {sample:?}");
                }
            }
        }
        results.push(scores);
    }

    // The point of the shared session machine: identical wire results.
    let (threads, reactor) = (&results[0], &results[1]);
    assert_eq!(threads.len(), reactor.len());
    for ((t_a, a), (_, b)) in threads.iter().zip(reactor) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "tenant {t_a} diverged");
        }
    }
    println!("\nboth back ends returned bitwise-identical scores ✓");
}
