//! Read-replica walkthrough: a leader `ShardRouter` behind the
//! `corrfuse-net` TCP server, two `corrfuse-replica` followers tailing
//! it over loopback replication links, and bounded-staleness reads
//! (`min_epoch`) answered by the followers — in process and through the
//! read-only follower server.
//!
//! ```sh
//! cargo run --release --example replica_follower
//! ```
//!
//! Everything runs in one process over ephemeral loopback ports; the
//! example prints the leader's epoch/lag gauges and each follower's
//! replication counters on the way out.

use std::sync::Arc;
use std::time::{Duration, Instant};

use corrfuse::core::fuser::{FuserConfig, Method};
use corrfuse::net::server::spawn;
use corrfuse::net::wire::WireMetricValue;
use corrfuse::net::{Client, Server, ServerConfig};
use corrfuse::obs::Registry;
use corrfuse::replica::{
    spawn as spawn_follower, Follower, FollowerConfig, FollowerServer, FollowerServerConfig,
};
use corrfuse::serve::{ReplicationConfig, RouterConfig, ShardRouter, TenantId};
use corrfuse::synth::{multi_tenant_events, MultiTenantSpec};

fn main() {
    // == Leader: three tenants on two shards, replication tap enabled ==
    let spec = MultiTenantSpec::new(3, 200, 2026);
    let stream = multi_tenant_events(&spec).expect("workload generates");
    let config = FuserConfig::new(Method::Exact);
    let leader_metrics = Arc::new(Registry::new());
    let router = ShardRouter::new(
        config.clone(),
        RouterConfig::new(2)
            .with_replication(ReplicationConfig::new())
            .with_metrics(Arc::clone(&leader_metrics)),
        stream
            .seeds
            .iter()
            .map(|(t, ds)| (TenantId(*t), ds.clone()))
            .collect(),
    )
    .expect("router constructs");
    let server = Server::bind("127.0.0.1:0", router, ServerConfig::new()).expect("leader binds");
    let addr = server.local_addr().expect("bound address").to_string();
    let (handle, join) = spawn(server).expect("leader spawns");
    println!("leader listening on {addr}");

    // == Two followers, each with its own metric registry ==
    let follower_config = |registry: &Arc<Registry>| {
        FollowerConfig::new(config.clone())
            .with_catchup_timeout(Duration::from_secs(5))
            .with_metrics(Arc::clone(registry))
    };
    let registries = [Arc::new(Registry::new()), Arc::new(Registry::new())];
    let followers: Vec<Arc<Follower>> = registries
        .iter()
        .map(|r| Arc::new(Follower::connect(&addr, follower_config(r)).expect("follower connects")))
        .collect();
    println!(
        "2 followers tailing {} shards each over loopback replication links",
        followers[0].n_shards()
    );

    // == Stream the workload into the leader ==
    let mut client = Client::connect(&addr).expect("ingest client connects");
    for (tenant, events) in &stream.messages {
        client
            .ingest(TenantId(*tenant), events)
            .expect("leader ingest");
    }
    client.flush().expect("read-your-writes barrier");

    // The leader's epoch gauges tell readers how fresh "fresh" is.
    let epochs: Vec<u64> = {
        let metrics = client.metrics().expect("leader metrics");
        (0..followers[0].n_shards())
            .map(|s| {
                let name = format!("serve_epoch_shard_{s}");
                metrics
                    .iter()
                    .find(|m| m.name == name)
                    .map(|m| match m.value {
                        WireMetricValue::Gauge(v) => v as u64,
                        _ => unreachable!("epoch gauges are gauges"),
                    })
                    .expect("leader exports epoch gauges")
            })
            .collect()
    };
    println!("leader shard epochs after ingest: {epochs:?}");

    // == Bounded-staleness reads: demand exactly the leader's epoch ==
    // `scores_at` blocks (up to the catch-up timeout) until the
    // follower's replication link has applied that epoch, then answers
    // from local state — bitwise the leader's scores.
    let t0 = Instant::now();
    for (i, follower) in followers.iter().enumerate() {
        for (tenant, _) in &stream.seeds {
            let shard = follower.shard_of(TenantId(*tenant));
            let scores = follower
                .scores_at(TenantId(*tenant), epochs[shard])
                .expect("bounded-staleness read");
            println!(
                "follower {i}: tenant {tenant} at epoch >= {}: {} scores",
                epochs[shard],
                scores.len()
            );
        }
    }
    println!("all reads caught up in {:?}", t0.elapsed());

    // == The same reads over the wire, through the follower server ==
    let fserver = FollowerServer::bind(
        "127.0.0.1:0",
        Arc::clone(&followers[0]),
        FollowerServerConfig::new(),
    )
    .expect("follower server binds");
    let faddr = fserver.local_addr().expect("follower address").to_string();
    let (fhandle, fjoin) = spawn_follower(fserver).expect("follower server spawns");
    let mut reader = Client::connect(&faddr).expect("wire reader connects");
    let (tenant, _) = stream.seeds[0];
    let shard = followers[0].shard_of(TenantId(tenant));
    let wire_scores = reader
        .scores_at(TenantId(tenant), epochs[shard])
        .expect("wire bounded-staleness read");
    println!(
        "follower server at {faddr}: tenant {tenant} read {} scores over the wire",
        wire_scores.len()
    );
    drop(reader);

    // == Observability: leader lag gauge, follower replication counters ==
    let lag = client
        .metrics()
        .expect("leader metrics")
        .into_iter()
        .find(|m| m.name == "replica_lag_batches")
        .expect("leader exports the lag gauge");
    println!("leader {}: {:?}", lag.name, lag.value);
    for (i, follower) in followers.iter().enumerate() {
        let stats = follower.stats();
        for s in &stats.shards {
            println!(
                "follower {i} shard {}: epoch {}, {} batches / {} events applied, \
                 {} subscriptions, {} snapshots",
                s.shard,
                s.applied_epoch,
                s.batches_applied,
                s.events_applied,
                s.subscriptions,
                s.snapshots,
            );
        }
    }
    drop(client);

    // == Orderly teardown ==
    fhandle.stop();
    fjoin
        .join()
        .expect("follower accept thread")
        .expect("follower server stops");
    for follower in &followers {
        follower.shutdown();
    }
    handle.stop();
    join.join()
        .expect("leader accept thread")
        .expect("leader stops");
    println!("leader and followers stopped cleanly");
}
