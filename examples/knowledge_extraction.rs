//! Knowledge-extraction fusion: a ReVerb-style ensemble.
//!
//! An information-extraction pipeline runs several extractors over the
//! same web pages. Extractors sharing patterns make the *same* mistakes
//! (positive correlation on false triples), while extractors aimed at
//! different page regions rarely overlap (negative correlation). This
//! example builds such an ensemble synthetically, discovers the
//! correlation structure from labelled data, and compares voting,
//! independent fusion, and correlation-aware fusion.
//!
//! Run with: `cargo run --release --example knowledge_extraction`

use corrfuse::core::cluster::{pairwise_correlations, ClusterConfig};
use corrfuse::core::fuser::{Fuser, FuserConfig, Method};
use corrfuse::eval::harness::{evaluate_method, MethodSpec};
use corrfuse::synth::{generate, GroupKind, GroupSpec, Polarity, SourceSpec, SynthSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five extractors: two share patterns (correlated mistakes), two read
    // complementary page regions (infobox vs body text), one independent.
    let spec = SynthSpec {
        n_triples: 4000,
        true_fraction: 0.35,
        sources: vec![
            SourceSpec::named("pattern-A", 0.62, 0.40),
            SourceSpec::named("pattern-A'", 0.60, 0.38), // shares rules with A
            SourceSpec::named("infobox", 0.80, 0.30),
            SourceSpec::named("body-text", 0.70, 0.35), // complementary to infobox
            SourceSpec::named("tables", 0.65, 0.25),
        ],
        groups: vec![
            GroupSpec {
                members: vec![0, 1],
                polarity: Polarity::FalseTriples,
                kind: GroupKind::Positive { strength: 0.85 },
            },
            GroupSpec {
                members: vec![0, 1],
                polarity: Polarity::TrueTriples,
                kind: GroupKind::Positive { strength: 0.7 },
            },
            GroupSpec {
                members: vec![2, 3],
                polarity: Polarity::TrueTriples,
                kind: GroupKind::Complementary { strength: 0.85 },
            },
        ],
        seed: 7,
    };
    let ds = generate(&spec)?;
    println!("extraction corpus: {}", ds.stats());

    // 1. What does the data say about extractor correlations?
    println!("\npairwise correlation lifts (true / false triples):");
    let pairs = pairwise_correlations(&ds, ds.require_gold()?, &ClusterConfig::default())?;
    for p in &pairs {
        let lt = p.lift_true.map(|v| format!("{v:.2}")).unwrap_or("-".into());
        let lf = p
            .lift_false
            .map(|v| format!("{v:.2}"))
            .unwrap_or("-".into());
        println!(
            "  {:<11} ~ {:<11}  true {lt:<6} false {lf}",
            ds.source_name(p.a),
            ds.source_name(p.b),
        );
    }

    // 2. Compare fusion strategies end to end.
    println!("\nfusion results (threshold 0.5):");
    println!(
        "{:<16} {:>9} {:>7} {:>6} {:>7}",
        "method", "precision", "recall", "f1", "auc-pr"
    );
    for spec in [
        MethodSpec::Union(25.0),
        MethodSpec::Union(50.0),
        MethodSpec::PrecRec,
        MethodSpec::PrecRecCorr,
    ] {
        let rep = evaluate_method(&ds, &spec)?;
        println!(
            "{:<16} {:>9.3} {:>7.3} {:>6.3} {:>7.3}",
            rep.name, rep.prf.precision, rep.prf.recall, rep.prf.f1, rep.ranked.auc_pr
        );
    }

    // 3. Inspect one interesting case: a triple provided only by the two
    //    pattern-sharing extractors — exactly the "common mistake" pattern.
    let gold = ds.require_gold()?;
    let corr = Fuser::fit(&FuserConfig::new(Method::Exact), &ds, gold)?;
    let indep = Fuser::fit(&FuserConfig::new(Method::PrecRec), &ds, gold)?;
    let pattern_pair: Vec<usize> = vec![0, 1];
    if let Some(t) = ds.triples().find(|&t| {
        let p = ds.providers(t);
        p.count_ones() == 2 && pattern_pair.iter().all(|&s| p.get(s))
    }) {
        println!(
            "\ntriple provided only by pattern-A and pattern-A' ({}):",
            match gold.get(t) {
                Some(true) => "actually true",
                Some(false) => "actually false",
                None => "unlabelled",
            }
        );
        println!("  PrecRec:     {:.3}", indep.score_triple(&ds, t)?);
        println!(
            "  PrecRecCorr: {:.3}  (agreement between correlated extractors is discounted)",
            corr.score_triple(&ds, t)?
        );
    }

    Ok(())
}
